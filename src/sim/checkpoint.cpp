#include "sim/checkpoint.hpp"

#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace gc::sim {

namespace {

// Fixed-width little-endian primitives. Doubles travel as their IEEE-754
// bit patterns, so the round trip is bit-exact.
void put_u64(std::ostream& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b, 8);
}

void put_u32(std::ostream& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b, 4);
}

void put_i64(std::ostream& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::ostream& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_vec(std::ostream& out, const std::vector<double>& v) {
  put_u64(out, v.size());
  for (double x : v) put_f64(out, x);
}

std::uint64_t get_u64(std::istream& in) {
  char b[8];
  in.read(b, 8);
  GC_CHECK_MSG(in.good(), "checkpoint truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i]))
         << (8 * i);
  return v;
}

std::uint32_t get_u32(std::istream& in) {
  char b[4];
  in.read(b, 4);
  GC_CHECK_MSG(in.good(), "checkpoint truncated");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[i]))
         << (8 * i);
  return v;
}

std::int64_t get_i64(std::istream& in) {
  return static_cast<std::int64_t>(get_u64(in));
}

double get_f64(std::istream& in) {
  return std::bit_cast<double>(get_u64(in));
}

std::vector<double> get_vec(std::istream& in) {
  const std::uint64_t size = get_u64(in);
  GC_CHECK_MSG(size <= (1ull << 32), "checkpoint vector size implausible");
  std::vector<double> v(static_cast<std::size_t>(size));
  for (auto& x : v) x = get_f64(in);
  return v;
}

void put_rng(std::ostream& out, const RngState& r) {
  for (std::uint64_t s : r.s) put_u64(out, s);
  put_u64(out, r.seed);
}

RngState get_rng(std::istream& in) {
  RngState r;
  for (auto& s : r.s) s = get_u64(in);
  r.seed = get_u64(in);
  return r;
}

void put_tracker(std::ostream& out, const StabilityTracker& t) {
  put_f64(out, t.abs_sum());
  put_f64(out, t.sup_partial_average());
  put_vec(out, t.partial_averages());
}

void get_tracker(std::istream& in, StabilityTracker& t) {
  const double abs_sum = get_f64(in);
  const double sup = get_f64(in);
  t.restore(abs_sum, sup, get_vec(in));
}

}  // namespace

Checkpoint make_checkpoint(int next_slot, const Rng& input_rng,
                           const core::LyapunovController& controller,
                           const Metrics& metrics,
                           const RandomWaypoint* mobility,
                           const net::Topology* topology) {
  GC_CHECK(next_slot >= 0);
  GC_CHECK((mobility == nullptr) == (topology == nullptr));
  const core::NetworkState& state = controller.state();
  const core::NetworkModel& model = state.model();
  const int n = model.num_nodes();
  const int S = model.num_sessions();

  Checkpoint c;
  c.next_slot = next_slot;
  c.input_rng = input_rng.state();
  c.last_grid_j = controller.last_grid_j();
  c.q.reserve(static_cast<std::size_t>(n) * S);
  for (int i = 0; i < n; ++i)
    for (int s = 0; s < S; ++s) c.q.push_back(state.q(i, s));
  c.gq.reserve(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      c.gq.push_back(i == j ? 0.0 : state.g_queue(i, j));
  c.battery_capacity_j.reserve(static_cast<std::size_t>(n));
  c.battery_level_j.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    c.battery_capacity_j.push_back(state.battery_capacity_j(i));
    c.battery_level_j.push_back(state.battery_j(i));
  }
  c.metrics = metrics;
  if (mobility != nullptr) {
    c.has_mobility = true;
    c.mobility = mobility->snapshot();
    const int first_user = topology->num_base_stations();
    for (int u = 0; u < topology->num_users(); ++u)
      c.user_positions.push_back(topology->position(first_user + u));
  }
  return c;
}

void restore_checkpoint(const Checkpoint& checkpoint, Rng& input_rng,
                        core::LyapunovController& controller,
                        Metrics& metrics, RandomWaypoint* mobility,
                        net::Topology* topology) {
  core::NetworkState& state = controller.mutable_state();
  const core::NetworkModel& model = state.model();
  const int n = model.num_nodes();
  const int S = model.num_sessions();
  GC_CHECK_MSG(
      static_cast<int>(checkpoint.q.size()) == n * S &&
          static_cast<int>(checkpoint.gq.size()) == n * n &&
          static_cast<int>(checkpoint.battery_capacity_j.size()) == n &&
          static_cast<int>(checkpoint.battery_level_j.size()) == n,
      "checkpoint does not match the model (node/session arity)");
  GC_CHECK_MSG(checkpoint.has_mobility == (mobility != nullptr),
               "checkpoint mobility presence does not match the run");

  input_rng.set_state(checkpoint.input_rng);
  controller.set_last_grid_j(checkpoint.last_grid_j);
  state.set_slot(checkpoint.next_slot);
  for (int i = 0; i < n; ++i)
    for (int s = 0; s < S; ++s)
      state.set_q(i, s, checkpoint.q[static_cast<std::size_t>(i) * S + s]);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      state.set_g_queue(i, j,
                        checkpoint.gq[static_cast<std::size_t>(i) * n + j]);
    }
  for (int i = 0; i < n; ++i) {
    state.set_battery_capacity_j(i, checkpoint.battery_capacity_j[i]);
    state.restore_battery_level_j(i, checkpoint.battery_level_j[i]);
  }
  metrics = checkpoint.metrics;
  if (mobility != nullptr) {
    GC_CHECK(topology != nullptr);
    mobility->restore(checkpoint.mobility);
    const int first_user = topology->num_base_stations();
    GC_CHECK_MSG(static_cast<int>(checkpoint.user_positions.size()) ==
                     topology->num_users(),
                 "checkpoint user-position arity mismatch");
    for (int u = 0; u < topology->num_users(); ++u)
      topology->set_position(first_user + u, checkpoint.user_positions[u]);
  }
}

void save_checkpoint(const Checkpoint& checkpoint, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    GC_CHECK_MSG(out.good(), "cannot open checkpoint file " << tmp);
    out.write(kCheckpointMagic, 8);
    put_u32(out, kCheckpointVersion);
    put_u64(out, checkpoint.scenario_hash);
    put_i64(out, checkpoint.next_slot);
    put_rng(out, checkpoint.input_rng);
    put_f64(out, checkpoint.last_grid_j);
    put_vec(out, checkpoint.q);
    put_vec(out, checkpoint.gq);
    put_vec(out, checkpoint.battery_capacity_j);
    put_vec(out, checkpoint.battery_level_j);

    const Metrics& m = checkpoint.metrics;
    put_vec(out, m.cost);
    put_vec(out, m.grid_j);
    put_vec(out, m.q_bs);
    put_vec(out, m.q_users);
    put_vec(out, m.battery_bs_j);
    put_vec(out, m.battery_users_j);
    put_f64(out, m.cost_avg.sum());
    put_i64(out, m.cost_avg.slots());
    put_tracker(out, m.q_total_stability);
    put_tracker(out, m.h_total_stability);
    put_f64(out, m.total_demand_shortfall);
    put_f64(out, m.total_unserved_energy_j);
    put_f64(out, m.total_curtailed_j);
    put_f64(out, m.total_delivered_packets);
    put_f64(out, m.total_admitted_packets);
    put_f64(out, m.total_offered_packets);
    put_i64(out, m.slots);
    put_f64(out, m.timing.s1_s);
    put_f64(out, m.timing.s2_s);
    put_f64(out, m.timing.s3_s);
    put_f64(out, m.timing.s4_s);
    put_f64(out, m.timing.step_s);

    put_u32(out, checkpoint.has_mobility ? 1 : 0);
    if (checkpoint.has_mobility) {
      put_u64(out, checkpoint.mobility.targets.size());
      for (const auto& t : checkpoint.mobility.targets) {
        put_f64(out, t.x);
        put_f64(out, t.y);
      }
      put_vec(out, checkpoint.mobility.speeds_mps);
      put_rng(out, checkpoint.mobility.rng);
      put_u64(out, checkpoint.user_positions.size());
      for (const auto& p : checkpoint.user_positions) {
        put_f64(out, p.x);
        put_f64(out, p.y);
      }
    }
    out.flush();
    GC_CHECK_MSG(out.good(), "checkpoint write failed on " << tmp);
  }
  GC_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
               "cannot move checkpoint into place at " << path);
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GC_CHECK_MSG(in.good(), "cannot open checkpoint " << path);
  char magic[8];
  in.read(magic, 8);
  GC_CHECK_MSG(in.good() && std::memcmp(magic, kCheckpointMagic, 8) == 0,
               "bad checkpoint magic in " << path);
  const std::uint32_t version = get_u32(in);
  GC_CHECK_MSG(version == kCheckpointVersion,
               "unsupported checkpoint version "
                   << version << " in " << path << " (this build reads v"
                   << kCheckpointVersion
                   << "; older checkpoints lack the scenario hash and "
                      "offered-packets fields — re-run from slot 0)");
  Checkpoint c;
  c.scenario_hash = get_u64(in);
  c.next_slot = static_cast<int>(get_i64(in));
  c.input_rng = get_rng(in);
  c.last_grid_j = get_f64(in);
  c.q = get_vec(in);
  c.gq = get_vec(in);
  c.battery_capacity_j = get_vec(in);
  c.battery_level_j = get_vec(in);

  Metrics& m = c.metrics;
  m.cost = get_vec(in);
  m.grid_j = get_vec(in);
  m.q_bs = get_vec(in);
  m.q_users = get_vec(in);
  m.battery_bs_j = get_vec(in);
  m.battery_users_j = get_vec(in);
  const double cost_sum = get_f64(in);
  const std::int64_t cost_slots = get_i64(in);
  m.cost_avg.restore(cost_sum, cost_slots);
  get_tracker(in, m.q_total_stability);
  get_tracker(in, m.h_total_stability);
  m.total_demand_shortfall = get_f64(in);
  m.total_unserved_energy_j = get_f64(in);
  m.total_curtailed_j = get_f64(in);
  m.total_delivered_packets = get_f64(in);
  m.total_admitted_packets = get_f64(in);
  m.total_offered_packets = get_f64(in);
  m.slots = static_cast<int>(get_i64(in));
  m.timing.s1_s = get_f64(in);
  m.timing.s2_s = get_f64(in);
  m.timing.s3_s = get_f64(in);
  m.timing.s4_s = get_f64(in);
  m.timing.step_s = get_f64(in);

  c.has_mobility = get_u32(in) != 0;
  if (c.has_mobility) {
    const std::uint64_t users = get_u64(in);
    GC_CHECK_MSG(users <= (1ull << 24), "checkpoint user count implausible");
    c.mobility.targets.resize(static_cast<std::size_t>(users));
    for (auto& t : c.mobility.targets) {
      t.x = get_f64(in);
      t.y = get_f64(in);
    }
    c.mobility.speeds_mps = get_vec(in);
    c.mobility.rng = get_rng(in);
    const std::uint64_t positions = get_u64(in);
    GC_CHECK_MSG(positions == users,
                 "checkpoint mobility/position arity mismatch");
    c.user_positions.resize(static_cast<std::size_t>(positions));
    for (auto& p : c.user_positions) {
      p.x = get_f64(in);
      p.y = get_f64(in);
    }
  }
  // The format is fully self-describing; trailing bytes mean corruption.
  in.peek();
  GC_CHECK_MSG(in.eof(), "trailing bytes after checkpoint in " << path);
  return c;
}

}  // namespace gc::sim
