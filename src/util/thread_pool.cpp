#include "util/thread_pool.hpp"

#include <utility>

#include "util/check.hpp"

namespace gc::util {

int ThreadPool::resolve_num_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(Options options) : options_(std::move(options)) {
  GC_CHECK_MSG(options_.num_threads >= 0,
               "thread pool needs num_threads >= 0");
  const int n = resolve_num_threads(options_.num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    GC_CHECK_MSG(!stop_, "submit on a stopped thread pool");
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop(int index) {
  if (options_.on_thread_start) options_.on_thread_start(index);
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain remaining work even when stopping: the destructor promises
      // queued jobs run before the join.
      if (queue_.empty()) break;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
  if (options_.on_thread_stop) options_.on_thread_stop(index);
}

}  // namespace gc::util
