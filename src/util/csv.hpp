// Minimal CSV writer used by the figure benches and examples to emit series
// that can be plotted directly against the paper's Fig. 2 panels.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace gc {

class CsvWriter {
 public:
  // Opens (truncates) `path` and writes the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  // Appends one row; must match the header arity.
  void row(const std::vector<double>& values);
  void row_strings(const std::vector<std::string>& values);

  const std::string& path() const { return path_; }

 private:
  void write_line(const std::vector<std::string>& cells);

  std::string path_;
  std::ofstream out_;
  std::size_t arity_;
};

// Formats a double compactly (shortest round-trippable-ish representation
// good enough for plotting).
std::string format_number(double v);

}  // namespace gc
