// Deterministic random number generation.
//
// Every stochastic process in the simulator (band bandwidths, renewable
// outputs, grid connectivity, node placement) draws from its own seeded
// stream so that experiments are reproducible bit-for-bit and adding a new
// consumer does not perturb existing ones.
//
// The generator is xoshiro256++ seeded through SplitMix64, which is fast,
// has a 2^256-1 period, and passes BigCrush.
#pragma once

#include <cstdint>

#include "util/check.hpp"

namespace gc {

// The full internal state of an Rng, exposed so long runs can be
// checkpointed and resumed bit-identically (sim/checkpoint.hpp).
struct RngState {
  std::uint64_t s[4] = {0, 0, 0, 0};
  std::uint64_t seed = 0;  // fork() derives children from this
};

// A single xoshiro256++ stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  // Checkpoint support: capture / restore the exact generator position.
  RngState state() const;
  void set_state(const RngState& state);

  // Raw 64 random bits.
  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform01();

  // Uniform in [lo, hi). Requires lo <= hi; returns lo when lo == hi.
  double uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  // Standard normal via Box-Muller (one draw per call; the pair's second
  // value is discarded so the stream stays position-independent).
  double normal01();
  double normal(double mean, double stddev) {
    return mean + stddev * normal01();
  }

  // Poisson-distributed count with the given mean (>= 0). Knuth's product
  // method below mean 30, normal approximation (rounded, clamped at 0)
  // above — both bounded work per call, suitable for scenario generators.
  std::int64_t poisson(double mean);

  // Derive an independent child stream; stable under the parent's seed and
  // the tag only (calling order of other methods does not matter if all
  // forks happen with distinct tags).
  Rng fork(std::uint64_t tag) const;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;  // remembered for fork()
};

}  // namespace gc
