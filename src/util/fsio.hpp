// Filesystem durability helpers (docs/ROBUSTNESS.md "Operating long runs").
//
// Atomic tmp+rename writes protect readers from torn files, but they do not
// make the data *durable*: after a power loss the rename may survive while
// the file's blocks are still unwritten. Checkpoints and the output sinks
// therefore fsync file data before renaming (fsync_file) and, best-effort,
// the containing directory after the rename (fsync_parent_dir) so the
// directory entry itself reaches disk.
//
// truncate_jsonl_to_slot is the resume side of the same story: a crashed
// run's JSONL sink (trace, LP solve log) may hold records past the last
// durable checkpoint plus a torn final line. Cutting the file back to the
// checkpointed slot before appending makes the killed+resumed run's output
// identical to an uninterrupted run's.
#pragma once

#include <cstdint>
#include <string>

namespace gc::util {

// fflush-equivalent durability for a file already written through a
// buffered stream: opens `path` and fsyncs its data to stable storage.
// Returns false (without throwing) when the file cannot be opened or the
// sync fails — callers treat durability as best-effort on filesystems that
// refuse fsync, but never skip the attempt.
bool fsync_file(const std::string& path);

// Fsyncs the directory containing `path` so a freshly renamed entry is
// durable. Best-effort: returns false on failure.
bool fsync_parent_dir(const std::string& path);

// Result of cutting a JSONL file back to a slot boundary.
struct JsonlTruncation {
  bool existed = false;        // false: nothing to do (fresh file)
  std::int64_t kept_lines = 0;     // complete lines before the cut
  std::int64_t dropped_lines = 0;  // complete lines at/after the cut slot
  bool dropped_torn_tail = false;  // a final unterminated line was cut
};

// Truncates `path` so it ends just before the first complete line whose
// `"key":<int>` value is >= cut_slot. Lines without the key (e.g. the trace
// header) are kept. A torn final line (no trailing newline) or a line whose
// key cannot be parsed is treated as the start of the damaged tail and cut
// with everything after it. Missing file = no-op ({existed: false}).
JsonlTruncation truncate_jsonl_to_slot(const std::string& path,
                                       const std::string& key, int cut_slot);

}  // namespace gc::util
