// Statistics helpers mirroring the paper's definitions:
//
//  * Definition 1 (time average):  a_bar = lim (1/T) sum_{t<T} E[a(t)]
//    -> TimeAverage accumulates (1/T) sum a(t) for one sample path.
//  * Definition 2 (strong stability): limsup (1/T) sum E[|a(t)|] < inf
//    -> StabilityTracker tracks the running partial averages of |a(t)| and
//       their supremum over a tail window, so tests can assert boundedness.
//
// RunningStat is a numerically stable (Welford) mean/variance accumulator.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace gc {

// Welford one-pass mean / variance / extrema.
class RunningStat {
 public:
  void add(double x);

  std::int64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return n_ > 0 ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// (1/T) sum_{t=0}^{T-1} a(t) over one sample path (Definition 1 with the
// expectation estimated by the path itself, as the paper's simulation does).
class TimeAverage {
 public:
  void add(double x) {
    GC_CHECK_MSG(x == x, "TimeAverage::add rejects NaN");
    sum_ += x;
    ++t_;
  }
  std::int64_t slots() const { return t_; }
  double average() const { return t_ > 0 ? sum_ / static_cast<double>(t_) : 0.0; }
  double sum() const { return sum_; }

  // Checkpoint support: reinstate the accumulator exactly.
  void restore(double sum, std::int64_t slots) {
    GC_CHECK(slots >= 0);
    sum_ = sum;
    t_ = slots;
  }

 private:
  double sum_ = 0.0;
  std::int64_t t_ = 0;
};

// Empirical strong-stability probe (Definition 2). Tracks the running
// partial averages A_T = (1/T) sum_{t<T} |a(t)| and reports
//   sup_T A_T            (overall supremum), and
//   sup over the last half of the horizon (tail supremum),
// so a test can assert that the process did not drift to infinity: for a
// strongly stable queue the tail supremum stays bounded as T grows, while an
// unstable queue's partial averages grow roughly linearly.
class StabilityTracker {
 public:
  void add(double value);

  std::int64_t slots() const { return static_cast<std::int64_t>(partial_.size()); }
  double running_average() const {
    return partial_.empty() ? 0.0 : partial_.back();
  }
  double sup_partial_average() const { return sup_; }
  // Supremum of partial averages over t in [T/2, T).
  double tail_sup_partial_average() const;
  // Least-squares slope of the partial-average sequence over the last half
  // of the horizon; near zero for stable processes, positive for unstable.
  double tail_growth_rate() const;

  // Checkpoint support: the raw accumulators, and exact reinstatement.
  double abs_sum() const { return abs_sum_; }
  const std::vector<double>& partial_averages() const { return partial_; }
  void restore(double abs_sum, double sup, std::vector<double> partial);

 private:
  double abs_sum_ = 0.0;
  double sup_ = 0.0;
  std::vector<double> partial_;
};

}  // namespace gc
