#include "util/fsio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>

namespace gc::util {

namespace {

bool fsync_fd_of(const std::string& path, int flags) {
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

bool fsync_file(const std::string& path) {
  return fsync_fd_of(path, O_WRONLY);
}

bool fsync_parent_dir(const std::string& path) {
  std::filesystem::path p(path);
  std::filesystem::path dir = p.parent_path();
  if (dir.empty()) dir = ".";
  return fsync_fd_of(dir.string(), O_RDONLY);
}

JsonlTruncation truncate_jsonl_to_slot(const std::string& path,
                                       const std::string& key, int cut_slot) {
  JsonlTruncation result;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return result;
  result.existed = true;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();

  const std::string needle = "\"" + key + "\":";
  std::size_t cut_at = data.size();
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t nl = data.find('\n', pos);
    if (nl == std::string::npos) {
      // Torn final line: a crash mid-write left no terminator. Cut it.
      result.dropped_torn_tail = true;
      cut_at = pos;
      break;
    }
    const std::string_view line(data.data() + pos, nl - pos);
    const std::size_t k = line.find(needle);
    if (k != std::string_view::npos) {
      std::size_t v = k + needle.size();
      while (v < line.size() && line[v] == ' ') ++v;
      bool parsed = false;
      long slot = 0;
      if (v < line.size() &&
          (std::isdigit(static_cast<unsigned char>(line[v])) ||
           line[v] == '-')) {
        char* end = nullptr;
        const std::string num(line.substr(v));
        slot = std::strtol(num.c_str(), &end, 10);
        parsed = end != num.c_str();
      }
      if (!parsed || slot >= cut_slot) {
        // Either the record belongs to a slot the checkpoint never saw, or
        // the line is damaged where its slot should be — cut from here.
        cut_at = pos;
        if (parsed) {
          // Count the remaining complete lines as dropped records.
          std::size_t q = pos;
          while (q < data.size()) {
            const std::size_t qnl = data.find('\n', q);
            if (qnl == std::string::npos) {
              result.dropped_torn_tail = true;
              break;
            }
            ++result.dropped_lines;
            q = qnl + 1;
          }
        } else {
          result.dropped_torn_tail = true;
        }
        break;
      }
    }
    ++result.kept_lines;
    pos = nl + 1;
  }
  if (cut_at < data.size()) {
    std::error_code ec;
    std::filesystem::resize_file(path, cut_at, ec);
    if (ec) {  // fall back to rewriting the kept prefix
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(data.data(), static_cast<std::streamsize>(cut_at));
    }
  }
  return result;
}

}  // namespace gc::util
