#include "util/stats.hpp"

#include <cmath>

namespace gc {

void RunningStat::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void StabilityTracker::restore(double abs_sum, double sup,
                               std::vector<double> partial) {
  GC_CHECK(abs_sum >= 0.0 && sup >= 0.0);
  abs_sum_ = abs_sum;
  sup_ = sup;
  partial_ = std::move(partial);
}

void StabilityTracker::add(double value) {
  GC_CHECK_MSG(!std::isnan(value), "StabilityTracker::add rejects NaN");
  abs_sum_ += std::abs(value);
  const double avg = abs_sum_ / static_cast<double>(partial_.size() + 1);
  partial_.push_back(avg);
  sup_ = std::max(sup_, avg);
}

double StabilityTracker::tail_sup_partial_average() const {
  if (partial_.empty()) return 0.0;
  const std::size_t start = partial_.size() / 2;
  double sup = 0.0;
  for (std::size_t i = start; i < partial_.size(); ++i)
    sup = std::max(sup, partial_[i]);
  return sup;
}

double StabilityTracker::tail_growth_rate() const {
  const std::size_t n = partial_.size();
  if (n < 4) return 0.0;
  const std::size_t start = n / 2;
  const std::size_t m = n - start;
  // Least-squares slope of partial_[start..n) against slot index.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = start; i < n; ++i) {
    const double x = static_cast<double>(i);
    const double y = partial_[i];
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double dm = static_cast<double>(m);
  const double denom = dm * sxx - sx * sx;
  if (denom <= 0.0) return 0.0;
  return (dm * sxy - sx * sy) / denom;
}

}  // namespace gc
