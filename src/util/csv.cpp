#include "util/csv.hpp"

#include <cmath>
#include <cstdio>

namespace gc {

std::string format_number(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  // %.10g is compact and plenty for plotting / comparisons.
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), arity_(header.size()) {
  GC_CHECK_MSG(out_.good(), "cannot open CSV file " << path);
  GC_CHECK(arity_ > 0);
  write_line(header);
}

void CsvWriter::row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_number(v));
  write_line(cells);
}

void CsvWriter::row_strings(const std::vector<std::string>& values) {
  write_line(values);
}

void CsvWriter::write_line(const std::vector<std::string>& cells) {
  GC_CHECK_MSG(cells.size() == arity_, "CSV arity mismatch in " << path_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
  GC_CHECK_MSG(out_.good(), "CSV write failed for " << path_);
}

}  // namespace gc
