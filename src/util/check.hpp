// Lightweight precondition / invariant checking.
//
// GC_CHECK is always on (it guards logic errors in a research library where
// silent corruption is worse than an abort); failures throw gc::CheckError so
// callers and tests can observe them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gc {

class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "GC_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace gc

#define GC_CHECK(expr)                                              \
  do {                                                              \
    if (!(expr))                                                    \
      ::gc::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define GC_CHECK_MSG(expr, msg)                                     \
  do {                                                              \
    if (!(expr)) {                                                  \
      std::ostringstream gc_check_os;                               \
      gc_check_os << msg;                                           \
      ::gc::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                 gc_check_os.str());                \
    }                                                               \
  } while (0)
