#include "util/rng.hpp"

#include <cmath>

namespace gc {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  seed_ = seed;
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state; splitmix64 of any seed
  // yields four words that are jointly zero with probability ~2^-256, but be
  // explicit anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

RngState Rng::state() const {
  RngState st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.seed = seed_;
  return st;
}

void Rng::set_state(const RngState& state) {
  GC_CHECK_MSG((state.s[0] | state.s[1] | state.s[2] | state.s[3]) != 0,
               "all-zero xoshiro state is invalid");
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  seed_ = state.seed;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  GC_CHECK_MSG(lo <= hi, "uniform bounds inverted: " << lo << " > " << hi);
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  GC_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % span);
}

bool Rng::bernoulli(double p) {
  GC_CHECK(p >= 0.0 && p <= 1.0);
  return uniform01() < p;
}

double Rng::normal01() {
  // Box-Muller on (0,1] uniforms; 1 - uniform01() avoids log(0).
  const double u = 1.0 - uniform01();
  const double v = uniform01();
  return std::sqrt(-2.0 * std::log(u)) * std::cos(2.0 * M_PI * v);
}

std::int64_t Rng::poisson(double mean) {
  GC_CHECK_MSG(mean >= 0.0, "poisson mean must be >= 0, got " << mean);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    std::int64_t k = 0;
    double p = uniform01();
    while (p > limit) {
      ++k;
      p *= uniform01();
    }
    return k;
  }
  const double draw = std::round(normal(mean, std::sqrt(mean)));
  return draw < 0.0 ? 0 : static_cast<std::int64_t>(draw);
}

Rng Rng::fork(std::uint64_t tag) const {
  // Mix the parent's seed with the tag through splitmix; independent of the
  // parent's current position.
  std::uint64_t x = seed_ ^ (0x9e3779b97f4a7c15ULL * (tag + 1));
  std::uint64_t mixed = splitmix64(x);
  return Rng(mixed);
}

}  // namespace gc
