// Minimal fixed-size thread pool for fan-out over independent jobs.
//
// Built for the parallel sweep engine (sim/sweep.hpp): a handful of
// long-running simulation jobs per thread, not fine-grained tasking — so a
// single mutex-protected FIFO queue is plenty, and there is no
// work-stealing, no futures, no task graph.
//
// The per-thread hooks are the load-bearing feature: on_thread_start runs
// ON each worker thread before it takes its first job (and on_thread_stop
// after its last), which is where the sweep installs the worker's
// obs::ThreadRegistryScope so every instrument a job touches resolves to a
// worker-private registry. Hooks receive the worker index in
// [0, num_threads).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gc::util {

// Namespace-scope (not nested) so it is complete wherever it is used as a
// defaulted argument; ThreadPool::Options aliases it.
struct ThreadPoolOptions {
  // 0 = std::thread::hardware_concurrency() (at least 1).
  int num_threads = 0;
  // Run on each worker thread around its job loop; may be empty.
  std::function<void(int)> on_thread_start;
  std::function<void(int)> on_thread_stop;
};

class ThreadPool {
 public:
  using Options = ThreadPoolOptions;

  explicit ThreadPool(Options options = {});
  // Waits for queued work to drain, then joins all workers (running
  // on_thread_stop on each).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues a job. Jobs must not throw — wrap and capture exceptions at
  // the call site (the sweep stores an std::exception_ptr per job).
  void submit(std::function<void()> job);

  // Blocks until the queue is empty and no job is executing.
  void wait_idle();

  // The resolved thread count `options` would produce.
  static int resolve_num_threads(int requested);

 private:
  void worker_loop(int index);

  Options options_;
  std::mutex mutex_;
  std::condition_variable work_cv_;   // signals workers: job or shutdown
  std::condition_variable idle_cv_;   // signals wait_idle: all drained
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;  // jobs currently executing
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace gc::util
