// Subproblem S1 — link scheduling (Section IV-C1).
//
// Minimizes Psi1 (eq. (35)), i.e. maximizes sum_ij H_ij * c_ij^m(t) over the
// binary variables alpha_ij^m under the single-radio constraint (22), then
// enforces the physical interference constraint (24) by computing minimal
// transmission powers per band (links that cannot reach the SINR threshold
// at P_max are descheduled, making their capacity 0 exactly as eq. (1)
// prescribes).
//
// Three schedulers are provided:
//  * sequential_fix_schedule — the paper's SF heuristic: repeatedly solve
//    the LP relaxation and round the largest alpha to 1;
//  * greedy_schedule — weight-sorted greedy (ablation baseline);
//  * exhaustive_schedule — exact maximization by branch and bound, usable
//    only on small instances (tests and ablations).
#pragma once

#include <cstdint>
#include <vector>

#include "core/state.hpp"
#include "core/types.hpp"
#include "lp/simplex.hpp"

namespace gc::util {
class ThreadPool;
}

namespace gc::core {

// One alpha_ij^m candidate together with its objective weight in exact
// Psi-hat units: the Psi1 drain beta*H_ij*c*dt/delta for primary
// candidates, the Psi3 routing gain for fill-in candidates, both minus the
// optional energy-awareness penalty below.
struct CandidateLinkBand {
  int tx = -1;
  int rx = -1;
  int band = -1;
  double capacity_bps = 0.0;
  double weight = 0.0;
};

// Energy-aware scheduling (extension; off by default). The paper's
// decomposition solves S1 before S4, so scheduling never sees the energy
// price of activating a link — at light load that wastes grid energy on
// relay hops with marginal queueing benefit (see EXPERIMENTS.md). When
// marginal_energy_price > 0 (the controller passes V * f'(P(t-1))), each
// *relay* fill-in candidate's weight is reduced by the price of the energy
// its base-station endpoints would spend (noise-limited minimal TX power +
// receive power over the slot); relay links that cannot justify their
// energy are not scheduled. Primary (H > 0) candidates and delivery links
// into a session destination are exempt: committed packets (27) and the
// demand (18) are obligations, not optimization choices.
//
// All alpha variables SF considers: allowed links whose virtual queue
// H_ij(t) is positive and whose band is available at both endpoints.
std::vector<CandidateLinkBand> build_candidates(const NetworkState& state,
                                                const SlotInputs& inputs);

// Secondary candidates for the Psi3-aware fill-in pass. Taken literally,
// the paper's S1 deadlocks at cold start: alpha is fixed to 0 wherever
// H_ij = 0, routing (25) then forbids l > 0, and H can only grow through
// routed packets — so nothing ever transmits. The joint per-slot problem P3
// resolves this: activating a link with H_ij = 0 contributes nothing to
// Psi1 but lets routing realize a Psi3 gain of (Q_i^s - Q_j^s - beta H_ij)
// per packet. This helper scores exactly that gain (capacity * best
// session differential, positive scores only) for links both of whose
// endpoints are still idle; the schedulers run a second pass over it.
std::vector<CandidateLinkBand> build_fill_in_candidates(
    const NetworkState& state, const SlotInputs& inputs,
    const std::vector<ScheduledLink>& already_scheduled,
    double marginal_energy_price = 0.0);

// The scheduling returned by these functions has power_w / capacity_packets
// unset; call assign_powers afterwards.
// fill_in enables the Psi3-aware second pass (required for the system to
// start; exposed so the ablation can demonstrate the deadlock).
// Both builders honor the fault overlay in `inputs`: links with a down
// endpoint or a deep-faded (tx, rx) pair produce no candidates, so a faulted
// element is simply absent from S1's feasible set. `lp_options` bounds the
// relaxation solves (iteration / wall-clock watchdog); a non-Optimal pass
// throws gc::CheckError naming the simplex status and the slot, which the
// controller's fallback ladder catches.
//
// `workspace` (optional) is the caller-owned lp::Workspace the relaxation
// series solves through. Passing one amortizes the tableau allocations
// across slots AND lets SF warm-start each pass after the first from the
// previous pass's bound states (the surviving candidates' variables map
// 1:1 onto the shrunk LP), which collapses most of phase I. Hints never
// cross calls — the first pass of every call is cold, and the within-call
// hints depend only on within-call history — so the same state always
// yields the same schedule (checkpoint/resume replays exactly). Against a
// workspace-free run, objectives and statuses match but a degenerate
// relaxation may round a different (equally optimal) alpha.
// `warm_keys` (optional, in/out) carries the cross-slot warm start
// (ControllerOptions::warm_across_slots). On entry it holds the previous
// slot's keys — one (tx, rx, band) key per variable of the LAST relaxation
// that slot solved, aligned with the states `workspace` recorded. SF then
// warm-starts its otherwise-cold first pass from every candidate whose key
// recurs. On exit it holds this slot's last-pass keys. The hint only moves
// the starting vertex, but a degenerate relaxation may round a different
// (equally optimal) alpha than the cold run — which is why the controller
// treats the carry as part of the checkpointed state: replay with the same
// carry is exact. Pass nullptr (default) for the historical cold-start
// behavior.
std::vector<ScheduledLink> sequential_fix_schedule(
    const NetworkState& state, const SlotInputs& inputs, bool fill_in = true,
    double marginal_energy_price = 0.0, const lp::Options& lp_options = {},
    lp::Workspace* workspace = nullptr,
    std::vector<std::uint64_t>* warm_keys = nullptr);

// Intra-slot cluster parallelism (docs/PERFORMANCE.md "Scaling past 500
// nodes"). The SF relaxation couples candidates only through shared
// endpoint nodes (the radio rows (22) and the per-(node, band) rows
// (20)/(21)), so connected components of the endpoint-sharing graph are
// independent LPs: solving them separately loses nothing of the
// relaxation. This variant partitions the candidates into those
// components, runs one SF series per cluster on `pool` (each with its own
// workspace), and merges the schedules in cluster order — smallest node
// index first — so the result is deterministic for ANY thread count. It is
// not bit-identical to the unclustered SF: the heuristic's rounding step
// picks the globally largest fractional alpha, the clustered one the
// largest within each cluster. The fill-in pass stays global (it is a
// cheap greedy and its candidates span clusters by design).
//
// Per-cluster LP statistics are buffered and forwarded to `stats_sink` in
// cluster order after the join (nullptr = off), so sinks see the same
// deterministic record stream at any thread count. Callers are responsible
// for per-worker obs registries on `pool` (the controller installs them);
// cluster jobs bump sched.* and lp.* instruments.
std::vector<ScheduledLink> sequential_fix_schedule_clustered(
    const NetworkState& state, const SlotInputs& inputs,
    util::ThreadPool& pool, bool fill_in = true,
    double marginal_energy_price = 0.0, const lp::Options& lp_options = {},
    lp::SolveStatsSink* stats_sink = nullptr);
std::vector<ScheduledLink> greedy_schedule(const NetworkState& state,
                                           const SlotInputs& inputs,
                                           bool fill_in = true,
                                           double marginal_energy_price = 0.0);
std::vector<ScheduledLink> exhaustive_schedule(const NetworkState& state,
                                               const SlotInputs& inputs);

// Total Psi1 weight (sum of H_ij * c_ij^m over scheduled links); the
// quantity all three schedulers maximize.
double schedule_weight(const NetworkState& state,
                       const std::vector<ScheduledLink>& schedule,
                       const SlotInputs& inputs);

// Enforces constraint (24): per band, computes the component-wise minimal
// powers meeting the SINR threshold (Foschini–Miljanic) and drops links that
// are infeasible even at maximum power. Fills power_w, capacity_bps and
// capacity_packets of the surviving links.
void assign_powers(const NetworkModel& model, const SlotInputs& inputs,
                   std::vector<ScheduledLink>& schedule);

}  // namespace gc::core
