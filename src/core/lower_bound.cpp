#include "core/lower_bound.hpp"

#include <algorithm>
#include <cmath>

#include "core/energy_manager.hpp"
#include "lp/pwl.hpp"
#include "lp/simplex.hpp"
#include "net/capacity.hpp"
#include "queueing/queues.hpp"

namespace gc::core {

LowerBoundSolver::LowerBoundSolver(const NetworkModel& model, double V,
                                   double lambda, int pwl_segments)
    : model_(&model), v_(V), lambda_(lambda), pwl_segments_(pwl_segments) {
  GC_CHECK(V >= 0.0 && lambda >= 0.0 && pwl_segments >= 2);
  const int n = model.num_nodes();
  q_.assign(static_cast<std::size_t>(n) * model.num_sessions(), 0.0);
  g_.assign(static_cast<std::size_t>(n) * n, 0.0);
  x_.assign(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) x_[i] = model.node(i).battery.initial_level_j;
}

double LowerBoundSolver::step(const SlotInputs& inputs) {
  const auto& model = *model_;
  const int n = model.num_nodes();
  const int B = model.num_base_stations();
  const int S = model.num_sessions();
  const double beta = model.beta();
  const double dt = model.slot_seconds();

  auto qv = [&](int i, int s) {
    return model.session(s).destination == i
               ? 0.0
               : q_[static_cast<std::size_t>(i) * S + s];
  };
  auto hv = [&](int i, int j) {
    return beta * g_[static_cast<std::size_t>(i) * n + j];
  };

  // --- Scheduling + routing block -----------------------------------------
  //
  // After the relaxations listed in the header, each candidate link's
  // contribution is linear in its own alpha: activating it earns the Psi1
  // virtual-queue drain beta*H_ij*cap plus the best achievable Psi3 routing
  // gain cap * max(0, -min_s coeff_s) (a linear objective over a per-link
  // capacity budget always gives the whole budget to the best session).
  // What remains is a fractional-matching LP with one row per node.
  struct Link {
    int tx, rx;
    double cap_pkts;
    int best_session;  // -1 if no session has a negative coefficient
    double value;      // objective gain per unit alpha
  };
  std::vector<Link> links;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      if (!model.link_allowed(i, j)) continue;
      double best_bps = 0.0;
      for (int m = 0; m < model.num_bands(); ++m)
        if (model.spectrum().link_band_ok(i, j, m))
          best_bps = std::max(best_bps,
                              net::nominal_capacity_bps(
                                  inputs.bandwidth_hz[m],
                                  model.radio().sinr_threshold));
      if (best_bps <= 0.0) continue;
      Link l;
      l.tx = i;
      l.rx = j;
      l.cap_pkts = best_bps * dt / model.packet_bits();
      l.best_session = -1;
      double best_coeff = 0.0;
      for (int s = 0; s < S; ++s) {
        if (i == model.session(s).destination) continue;  // (17)
        const double coeff = -qv(i, s) + qv(j, s) + beta * hv(i, j);
        if (coeff < best_coeff) {
          best_coeff = coeff;
          l.best_session = s;
        }
      }
      l.value = l.cap_pkts * (beta * hv(i, j) - best_coeff);
      if (l.value <= 0.0) continue;
      links.push_back(l);
    }

  std::vector<double> alpha(links.size(), 0.0);
  if (!links.empty()) {
    lp::Model m;
    for (const auto& l : links) {
      // With R radios a link can aggregate up to min(R_tx, R_rx, #bands)
      // simultaneous band activations (any binary choice maps into this).
      int common = 0;
      for (int b = 0; b < model.num_bands(); ++b)
        if (model.spectrum().link_band_ok(l.tx, l.rx, b)) ++common;
      const double ub = std::min(
          {model.num_radios(l.tx), model.num_radios(l.rx), common});
      m.add_variable(0.0, std::max(ub, 1.0), -l.value);
    }
    std::vector<int> node_row(static_cast<std::size_t>(n), -1);
    for (std::size_t v = 0; v < links.size(); ++v)
      for (int node : {links[v].tx, links[v].rx}) {
        if (node_row[node] < 0)
          node_row[node] = m.add_row(lp::Sense::LessEqual,
                                     static_cast<double>(model.num_radios(node)));
        m.set_coeff(node_row[node], static_cast<int>(v), 1.0);
      }
    const lp::Solution sol = lp::solve(m);
    GC_CHECK_MSG(sol.status == lp::Status::Optimal,
                 "lower-bound matching LP: " << lp::to_string(sol.status));
    alpha = sol.x;
  }

  // --- Admission block -----------------------------------------------------
  //
  // Relaxed (19): total admission per session <= K_max, placed at whichever
  // base stations have Q_b^s < lambda V; linear => all of K_max goes to the
  // most negative coefficient.
  std::vector<double> admitted(static_cast<std::size_t>(B) * S, 0.0);
  for (int s = 0; s < S; ++s) {
    int best_b = 0;
    for (int b = 1; b < B; ++b)
      if (qv(b, s) < qv(best_b, s)) best_b = b;
    if (qv(best_b, s) - lambda_ * v_ < 0.0)
      admitted[static_cast<std::size_t>(best_b) * S + s] =
          model.session(s).max_admit_packets;
  }

  // --- Energy block ---------------------------------------------------------
  //
  // With the transmit/receive energy relaxed away, demand is the baseline
  // E_const + E_idle per node and the block is exactly the S4 LP (charge
  // XOR discharge dropped is a relaxation too) evaluated on the relaxed
  // system's own batteries. A scratch NetworkState carries (x, V) so
  // lp_energy_manage can be reused.
  NetworkState scratch(model, v_);
  scratch.set_slot(slot_);  // the tariff keys the cost off the slot index
  for (int i = 0; i < n; ++i) scratch.set_battery_j(i, x_[i]);
  std::vector<double> demands(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i)
    demands[i] = energy::baseline_energy_j(model.node(i).energy, dt);
  const EnergyResult energy =
      lp_energy_manage(scratch, inputs, demands, pwl_segments_);

  // --- Advance the relaxed system's queues ---------------------------------
  std::vector<double> served(q_.size(), 0.0), arrived(q_.size(), 0.0);
  for (std::size_t v = 0; v < links.size(); ++v) {
    const auto& l = links[v];
    if (l.best_session < 0 || alpha[v] <= 0.0) continue;
    const double flow = l.cap_pkts * alpha[v];
    served[static_cast<std::size_t>(l.tx) * S + l.best_session] += flow;
    arrived[static_cast<std::size_t>(l.rx) * S + l.best_session] += flow;
  }
  for (int b = 0; b < B; ++b)
    for (int s = 0; s < S; ++s)
      arrived[static_cast<std::size_t>(b) * S + s] +=
          admitted[static_cast<std::size_t>(b) * S + s];
  for (int i = 0; i < n; ++i)
    for (int s = 0; s < S; ++s) {
      const std::size_t idx = static_cast<std::size_t>(i) * S + s;
      if (model.session(s).destination == i) {
        q_[idx] = 0.0;
        continue;
      }
      q_[idx] = queueing::queue_step(q_[idx], served[idx], arrived[idx]);
    }
  for (std::size_t v = 0; v < links.size(); ++v) {
    const auto& l = links[v];
    const std::size_t idx = static_cast<std::size_t>(l.tx) * n + l.rx;
    const double flow =
        l.best_session >= 0 ? l.cap_pkts * alpha[v] : 0.0;
    g_[idx] = queueing::queue_step(g_[idx], l.cap_pkts * alpha[v], flow);
  }
  for (int i = 0; i < n; ++i) {
    const auto& d = energy.decisions[i];
    x_[i] += d.charge_total_j() - d.discharge_j;
    x_[i] = std::clamp(x_[i], 0.0, model.node(i).battery.capacity_j);
  }

  const double slot_cost = energy.cost;
  cost_avg_.add(slot_cost);
  ++slot_;
  return slot_cost;
}

double LowerBoundSolver::lower_bound() const {
  GC_CHECK(v_ > 0.0);
  // The per-slot energy block optimizes the tangent PWL surrogate of f; its
  // reported true-f cost can exceed the f-optimum by at most the worst
  // tangent gap a*(w/2)^2 (w = anchor spacing), which is subtracted so the
  // bound stays a bound.
  const double w =
      model_->max_total_grid_j() / std::max(pwl_segments_ - 1, 1);
  const double pwl_gap = model_->max_tariff_multiplier() *
                         model_->cost().a() * (w / 2.0) * (w / 2.0);
  return average_cost() - model_->drift_constant_B() / v_ - pwl_gap;
}

}  // namespace gc::core
