#include "core/energy_manager.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "lp/pwl.hpp"
#include "lp/simplex.hpp"
#include "util/thread_pool.hpp"

namespace gc::core {

std::vector<double> compute_energy_demands(
    const NetworkModel& model, const std::vector<ScheduledLink>& schedule) {
  const int n = model.num_nodes();
  const double dt = model.slot_seconds();
  std::vector<double> demand(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i)
    demand[i] = energy::baseline_energy_j(model.node(i).energy, dt);
  for (const auto& sl : schedule) {
    demand[sl.tx] += sl.power_w * dt;                          // eq. (23) TX
    demand[sl.rx] += model.node(sl.rx).energy.recv_power_w * dt;  // RX
  }
  return demand;
}

namespace {

struct NodeInstance {
  double demand_j = 0.0;
  double renewable_j = 0.0;
  double grid_cap_j = 0.0;
  double charge_cap_j = 0.0;     // min(c_max, x_max - x), eq. (11)
  double discharge_cap_j = 0.0;  // min(d_max, x), eq. (12)
  double z = 0.0;
  bool connected = false;
  bool priced = false;  // grid draw enters f(P) (base stations)
};

struct NodeResponse {
  NodeEnergyDecision d;
  // Lexicographic score: minimize unserved first, then z(c-d) + pi*draw.
  double priced_score = 0.0;
};

NodeInstance make_instance(const NetworkState& state, const SlotInputs& inputs,
                           const std::vector<double>& demands_j, int i) {
  const auto& model = state.model();
  NodeInstance inst;
  inst.priced = model.topology().is_base_station(i);
  if (inputs.node_is_down(i)) {
    // A down node is inert: no demand, no renewable intake, no grid draw,
    // battery frozen. All caps zero makes every solver's best response the
    // all-zeros decision.
    inst.connected = inputs.grid_connected[i] != 0;
    return inst;
  }
  inst.demand_j = demands_j[i];
  inst.renewable_j = inputs.renewable_j[i];
  inst.connected = inputs.grid_connected[i] != 0;
  inst.grid_cap_j = inst.connected ? model.node(i).grid.max_draw_j : 0.0;
  inst.charge_cap_j = state.charge_headroom_j(i);
  inst.discharge_cap_j = state.discharge_headroom_j(i);
  inst.z = state.z(i);
  return inst;
}

// The slot's effective tariff: the time-varying base tariff scaled by the
// fault overlay's price-spike multiplier.
energy::QuadraticCost effective_cost(const NetworkState& state,
                                     const SlotInputs& inputs) {
  const energy::QuadraticCost base = state.model().cost_at(state.slot());
  return inputs.cost_multiplier == 1.0 ? base
                                       : base.scaled(inputs.cost_multiplier);
}

// Discharge branch: c = 0, fill the demand from {renewable, grid,
// discharge} in increasing unit-cost order (r: 0, g: pi_eff, d: -z).
NodeResponse discharge_branch(const NodeInstance& inst, double pi_eff) {
  struct Source {
    double unit_cost;
    double cap;
    int kind;  // 0 = r, 1 = g, 2 = d (tie order)
  };
  std::array<Source, 3> sources = {
      Source{0.0, inst.renewable_j, 0},
      Source{pi_eff, inst.grid_cap_j, 1},
      Source{-inst.z, inst.discharge_cap_j, 2}};
  std::sort(sources.begin(), sources.end(), [](const Source& a, const Source& b) {
    if (a.unit_cost != b.unit_cost) return a.unit_cost < b.unit_cost;
    return a.kind < b.kind;
  });

  NodeResponse resp;
  double need = inst.demand_j;
  for (const auto& s : sources) {
    const double take = std::min(need, s.cap);
    if (take <= 0.0) continue;
    switch (s.kind) {
      case 0: resp.d.serve_renewable_j = take; break;
      case 1: resp.d.serve_grid_j = take; break;
      case 2: resp.d.discharge_j = take; break;
    }
    need -= take;
  }
  resp.d.unserved_j = std::max(need, 0.0);
  resp.d.curtailed_j = inst.renewable_j - resp.d.serve_renewable_j;
  resp.d.demand_j = inst.demand_j;
  resp.d.connected = inst.connected;
  resp.priced_score =
      -inst.z * resp.d.discharge_j + pi_eff * resp.d.grid_draw_j();
  return resp;
}

// Charge branch: d = 0. Everything is a piecewise-linear function of the
// grid energy g used for serving demand; evaluating the objective at the
// kink candidates is exact.
NodeResponse charge_branch(const NodeInstance& inst, double pi_eff) {
  const double g_hi = std::min(inst.demand_j, inst.grid_cap_j);
  const double g_lo = std::clamp(inst.demand_j - inst.renewable_j, 0.0, g_hi);
  const double kink = inst.charge_cap_j - inst.renewable_j + inst.demand_j;
  const std::array<double, 3> candidates = {
      g_lo, g_hi, std::clamp(kink, g_lo, g_hi)};

  NodeResponse best;
  bool have = false;
  double best_unserved = 0.0;
  for (double g : candidates) {
    NodeEnergyDecision d;
    d.demand_j = inst.demand_j;
    d.connected = inst.connected;
    d.serve_grid_j = g;
    d.serve_renewable_j = std::min(inst.demand_j - g, inst.renewable_j);
    d.unserved_j =
        std::max(inst.demand_j - g - d.serve_renewable_j, 0.0);
    const double surplus = inst.renewable_j - d.serve_renewable_j;
    d.charge_renewable_j =
        inst.z < 0.0 ? std::min(surplus, inst.charge_cap_j) : 0.0;
    d.curtailed_j = surplus - d.charge_renewable_j;
    const double room =
        std::min(inst.charge_cap_j - d.charge_renewable_j, inst.grid_cap_j - g);
    d.charge_grid_j = (inst.z + pi_eff < 0.0) ? std::max(room, 0.0) : 0.0;
    const double score = inst.z * d.charge_total_j() + pi_eff * d.grid_draw_j();
    if (!have || d.unserved_j < best_unserved - 1e-12 ||
        (d.unserved_j <= best_unserved + 1e-12 &&
         score < best.priced_score - 1e-12)) {
      best.d = d;
      best.priced_score = score;
      best_unserved = d.unserved_j;
      have = true;
    }
  }
  return best;
}

// Best response of one node to marginal grid price pi (V f'(P) for priced
// nodes; grid energy is free for users per Section II-E).
NodeResponse best_response(const NodeInstance& inst, double pi) {
  const double pi_eff = inst.priced ? pi : 0.0;
  const NodeResponse dis = discharge_branch(inst, pi_eff);
  const NodeResponse chg = charge_branch(inst, pi_eff);
  // Lexicographic: serve demand first (eq. (9) forces choosing a branch).
  if (dis.d.unserved_j < chg.d.unserved_j - 1e-12) return dis;
  if (chg.d.unserved_j < dis.d.unserved_j - 1e-12) return chg;
  return dis.priced_score < chg.priced_score - 1e-12 ? dis : chg;
}

EnergyResult assemble(const NetworkState& state, const SlotInputs& inputs,
                      std::vector<NodeEnergyDecision> decisions) {
  const auto& model = state.model();
  EnergyResult res;
  res.decisions = std::move(decisions);
  for (int i = 0; i < model.num_nodes(); ++i) {
    auto& d = res.decisions[i];
    // A down node cannot harvest: whatever renewable arrived is wasted.
    // (Its instance had renewable 0, so serve/charge are already 0.)
    if (inputs.node_is_down(i)) d.curtailed_j = inputs.renewable_j[i];
    if (model.topology().is_base_station(i)) res.grid_total_j += d.grid_draw_j();
    res.objective += state.z(i) * (d.charge_total_j() - d.discharge_j);
    res.unserved_total_j += d.unserved_j;
  }
  res.cost = effective_cost(state, inputs).value(res.grid_total_j);
  res.objective += state.V() * res.cost;
  return res;
}

// Restores the charge-XOR-discharge rule (9) on a decision that may carry
// both sides (LP degenerate ties; blended marginal nodes). Cancels
// t = min(c, d) against both: the demand d was covering is re-served from
// the freed renewable (c_r) or grid (c_g) energy. z(c - d), the grid draw
// g + c_g, and every constraint are invariant under the swap.
void restore_charge_xor(NodeEnergyDecision& d) {
  const double t = std::min(d.charge_total_j(), d.discharge_j);
  if (t <= 0.0) return;
  const double via_renew = std::min(t, d.charge_renewable_j);
  d.charge_renewable_j -= via_renew;
  d.serve_renewable_j += via_renew;
  const double via_grid = t - via_renew;
  d.charge_grid_j -= via_grid;
  d.serve_grid_j += via_grid;
  d.discharge_j -= t;
  // Clear the floating-point residue on whichever side was cancelled.
  const double eps = 1e-9 * (1.0 + t);
  if (d.charge_renewable_j < eps) d.charge_renewable_j = 0.0;
  if (d.charge_grid_j < eps) d.charge_grid_j = 0.0;
  if (d.discharge_j < eps) d.discharge_j = 0.0;
}

}  // namespace

EnergyResult price_energy_manage(const NetworkState& state,
                                 const SlotInputs& inputs,
                                 const std::vector<double>& demands_j) {
  const auto& model = state.model();
  const int n = model.num_nodes();
  GC_CHECK(static_cast<int>(demands_j.size()) == n);
  const double V = state.V();

  std::vector<NodeInstance> insts;
  insts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    insts.push_back(make_instance(state, inputs, demands_j, i));

  const auto priced_draw = [&](double pi) {
    double total = 0.0;
    for (const auto& inst : insts)
      if (inst.priced) total += best_response(inst, pi).d.grid_draw_j();
    return total;
  };

  // Bisection on phi(pi) = pi - V f'(D(pi)), which is increasing. Under a
  // time-varying tariff (and any price-spike multiplier) the slot's
  // effective cost function applies.
  const energy::QuadraticCost cost = effective_cost(state, inputs);
  double lo = V * cost.derivative(0.0);
  double hi = V * cost.derivative(model.max_total_grid_j());
  for (int it = 0; it < 64 && hi - lo > 1e-12 * (1.0 + hi); ++it) {
    const double mid = 0.5 * (lo + hi);
    const double phi = mid - V * cost.derivative(priced_draw(mid));
    (phi < 0.0 ? lo : hi) = mid;
  }

  // D(pi) is a step function: the bracket ends give an all-grid /
  // no-grid pair around the marginal node. Candidate solutions: both ends,
  // plus a blend that moves the marginal nodes' grid usage fractionally so
  // the total lands exactly where V f'(P) meets the price (the step a
  // closed-form threshold policy cannot split on its own; the blend is
  // feasible because each node's constraint set is convex and we only
  // blend nodes whose charge-XOR-discharge pattern matches at both ends).
  std::vector<NodeEnergyDecision> dec_lo(static_cast<std::size_t>(n)),
      dec_hi(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    dec_lo[i] = best_response(insts[i], lo).d;
    dec_hi[i] = best_response(insts[i], hi).d;
  }
  auto priced_total = [&](const std::vector<NodeEnergyDecision>& d) {
    double p = 0.0;
    for (int i = 0; i < n; ++i)
      if (insts[i].priced) p += d[i].grid_draw_j();
    return p;
  };
  const double d_lo = priced_total(dec_lo);
  const double d_hi = priced_total(dec_hi);

  std::vector<std::vector<NodeEnergyDecision>> candidates;
  candidates.push_back(dec_hi);
  candidates.push_back(dec_lo);
  if (d_lo > d_hi + 1e-9 && cost.a() > 0.0) {
    const double target = std::clamp(
        cost.inverse_derivative(0.5 * (lo + hi) / std::max(V, 1e-30)),
        d_hi, d_lo);
    const double phi = (target - d_hi) / (d_lo - d_hi);
    std::vector<NodeEnergyDecision> blend = dec_hi;
    for (int i = 0; i < n; ++i) {
      if (!insts[i].priced) continue;
      const auto& a = dec_hi[i];
      const auto& b = dec_lo[i];
      auto& d = blend[i];
      auto mix = [phi](double x, double y) { return x + phi * (y - x); };
      d.serve_renewable_j = mix(a.serve_renewable_j, b.serve_renewable_j);
      d.serve_grid_j = mix(a.serve_grid_j, b.serve_grid_j);
      d.discharge_j = mix(a.discharge_j, b.discharge_j);
      d.charge_renewable_j = mix(a.charge_renewable_j, b.charge_renewable_j);
      d.charge_grid_j = mix(a.charge_grid_j, b.charge_grid_j);
      d.curtailed_j = mix(a.curtailed_j, b.curtailed_j);
      d.unserved_j = mix(a.unserved_j, b.unserved_j);
      // A node flipping between a discharge-flavored and a charge-flavored
      // endpoint blends to a (9)-violating point; cancel it back.
      restore_charge_xor(d);
    }
    candidates.push_back(std::move(blend));
  }

  EnergyResult best;
  bool have = false;
  for (auto& cand : candidates) {
    EnergyResult res = assemble(state, inputs, std::move(cand));
    if (!have || res.unserved_total_j < best.unserved_total_j - 1e-12 ||
        (res.unserved_total_j <= best.unserved_total_j + 1e-12 &&
         res.objective < best.objective)) {
      best = std::move(res);
      have = true;
    }
  }
  return best;
}

EnergyResult lp_energy_manage(const NetworkState& state,
                              const SlotInputs& inputs,
                              const std::vector<double>& demands_j,
                              const EnergyLpOptions& options,
                              const lp::Options& lp_options,
                              lp::Workspace* workspace) {
  const auto& model = state.model();
  const int n = model.num_nodes();
  const int pwl_segments = options.pwl_segments;
  GC_CHECK(static_cast<int>(demands_j.size()) == n);
  GC_CHECK(pwl_segments >= 2);
  const double V = state.V();

  // Decomposition: the LP covers the node prefix [0, k) — base stations
  // are always the first indices — and every user in [k, n) is solved by
  // its exact closed-form best response at grid price 0 (users' grid
  // energy never enters f(P), so their subproblems are independent of P
  // and of each other; docs/ALGORITHM.md "Why the S4 split is exact").
  const bool decompose =
      options.decompose == S4Decompose::Force ||
      (options.decompose == S4Decompose::Auto &&
       n >= options.decompose_min_nodes);
  const int k = decompose ? model.num_base_stations() : n;

  std::vector<NodeEnergyDecision> decisions(static_cast<std::size_t>(n));
  if (k < n) {
    const auto solve_users = [&](int lo, int hi) {
      for (int i = lo; i < hi; ++i)
        decisions[static_cast<std::size_t>(i)] =
            best_response(make_instance(state, inputs, demands_j, i), 0.0).d;
    };
    util::ThreadPool* pool = options.pool;
    if (pool != nullptr && pool->num_threads() > 1) {
      // Fixed chunk grain: the split depends only on (n, k, threads), so
      // the work partition — and with it every FP result, each written to
      // its own slot — is identical however the chunks land on workers.
      const int chunk =
          std::max(64, (n - k + pool->num_threads() - 1) / pool->num_threads());
      std::vector<std::exception_ptr> errors;
      errors.resize(static_cast<std::size_t>((n - k + chunk - 1) / chunk));
      int job = 0;
      for (int lo = k; lo < n; lo += chunk, ++job)
        pool->submit([&, lo, job] {
          try {
            solve_users(lo, std::min(lo + chunk, n));
          } catch (...) {
            errors[static_cast<std::size_t>(job)] = std::current_exception();
          }
        });
      pool->wait_idle();
      for (const std::exception_ptr& e : errors)
        if (e) std::rethrow_exception(e);
    } else {
      solve_users(k, n);
    }
  }

  // Penalty dominating every per-joule gain so unserved energy is a last
  // resort. Computed over ALL nodes so the objective scale is identical
  // with and without decomposition.
  double max_abs_z = 0.0;
  for (int i = 0; i < n; ++i) max_abs_z = std::max(max_abs_z, std::abs(state.z(i)));
  const double big_m = 10.0 * (max_abs_z + V * model.gamma_max() + 1.0);

  lp::Model m;
  struct NodeVars {
    int r, d, cr, cg, g, u;
  };
  std::vector<NodeVars> nv(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    const NodeInstance inst = make_instance(state, inputs, demands_j, i);
    const double z = inst.z;
    nv[i].r = m.add_variable(0.0, inst.renewable_j, 0.0);
    nv[i].d = m.add_variable(0.0, inst.discharge_cap_j, -z);
    nv[i].cr = m.add_variable(0.0, inst.charge_cap_j, z);
    nv[i].cg = m.add_variable(0.0, inst.connected ? inst.grid_cap_j : 0.0, z);
    nv[i].g = m.add_variable(0.0, inst.connected ? inst.grid_cap_j : 0.0, 0.0);
    nv[i].u = m.add_variable(0.0, lp::kInf, big_m);
    // Demand balance: r + d + g + u = E (eq. in Sec. II-E with slack).
    const int demand_row = m.add_row(lp::Sense::Equal, inst.demand_j);
    m.set_coeff(demand_row, nv[i].r, 1.0);
    m.set_coeff(demand_row, nv[i].d, 1.0);
    m.set_coeff(demand_row, nv[i].g, 1.0);
    m.set_coeff(demand_row, nv[i].u, 1.0);
    // Renewable split with curtailment: r + cr <= R (relaxed eq. (3)).
    const int renew_row = m.add_row(lp::Sense::LessEqual, inst.renewable_j);
    m.set_coeff(renew_row, nv[i].r, 1.0);
    m.set_coeff(renew_row, nv[i].cr, 1.0);
    // Grid cap (eq. (14)): g + cg <= p_max (0 if disconnected, via bounds).
    const int grid_row = m.add_row(lp::Sense::LessEqual, inst.grid_cap_j);
    m.set_coeff(grid_row, nv[i].g, 1.0);
    m.set_coeff(grid_row, nv[i].cg, 1.0);
    // Charge cap (eq. (11)): cr + cg <= headroom.
    const int charge_row = m.add_row(lp::Sense::LessEqual, inst.charge_cap_j);
    m.set_coeff(charge_row, nv[i].cr, 1.0);
    m.set_coeff(charge_row, nv[i].cg, 1.0);
  }
  // P = sum over base stations of (g + cg).
  const int pvar = m.add_variable(0.0, model.max_total_grid_j(), 0.0);
  const int prow = m.add_row(lp::Sense::Equal, 0.0);
  m.set_coeff(prow, pvar, -1.0);
  for (int i = 0; i < model.num_base_stations(); ++i) {
    m.set_coeff(prow, nv[i].g, 1.0);
    m.set_coeff(prow, nv[i].cg, 1.0);
  }
  // Epigraph variable y >= tangents of f; objective V*y.
  const int yvar = m.add_variable(0.0, lp::kInf, V);
  const energy::QuadraticCost cost = effective_cost(state, inputs);
  const auto segments = lp::tangent_segments(
      [&](double p) { return cost.value(p); },
      [&](double p) { return cost.derivative(p); }, 0.0,
      model.max_total_grid_j(), pwl_segments);
  for (const auto& seg : segments) {
    const int row = m.add_row(lp::Sense::LessEqual, -seg.intercept);
    m.set_coeff(row, pvar, seg.slope);
    m.set_coeff(row, yvar, -1.0);
  }

  // Cross-slot warm start: the layout above is a pure function of k, so an
  // identity map carries each variable's final state into the next slot.
  if (options.warm_across_slots && workspace != nullptr) {
    std::vector<int> ident(static_cast<std::size_t>(m.num_variables()));
    for (std::size_t j = 0; j < ident.size(); ++j)
      ident[j] = static_cast<int>(j);
    workspace->set_warm_start(std::move(ident), /*cross_slot=*/true);
  }

  lp::Workspace local_ws;
  const lp::Solution sol =
      lp::solve(m, lp_options, workspace != nullptr ? *workspace : local_ws);
  GC_CHECK_MSG(sol.status == lp::Status::Optimal,
               "S4 LP not optimal at slot " << state.slot() << ": "
                                            << lp::to_string(sol.status));

  for (int i = 0; i < k; ++i) {
    auto& d = decisions[i];
    d.demand_j = inputs.node_is_down(i) ? 0.0 : demands_j[i];
    d.connected = inputs.grid_connected[i] != 0;
    d.serve_renewable_j = sol.x[nv[i].r];
    d.discharge_j = sol.x[nv[i].d];
    d.charge_renewable_j = sol.x[nv[i].cr];
    d.charge_grid_j = sol.x[nv[i].cg];
    d.serve_grid_j = sol.x[nv[i].g];
    d.unserved_j = sol.x[nv[i].u];

    // Restore the charge-XOR-discharge rule (9), which the LP drops
    // (simultaneous pairs only arise at degenerate z_i ties).
    restore_charge_xor(d);

    d.curtailed_j = std::max(
        inputs.renewable_j[i] - d.serve_renewable_j - d.charge_renewable_j,
        0.0);
  }
  return assemble(state, inputs, std::move(decisions));
}

EnergyResult lp_energy_manage(const NetworkState& state,
                              const SlotInputs& inputs,
                              const std::vector<double>& demands_j,
                              int pwl_segments,
                              const lp::Options& lp_options,
                              lp::Workspace* workspace) {
  EnergyLpOptions options;
  options.pwl_segments = pwl_segments;
  options.decompose = S4Decompose::Never;
  return lp_energy_manage(state, inputs, demands_j, options, lp_options,
                          workspace);
}

double psi4(const NetworkState& state,
            const std::vector<NodeEnergyDecision>& decisions,
            double cost_multiplier) {
  const auto& model = state.model();
  double total = 0.0;
  double p = 0.0;
  for (int i = 0; i < model.num_nodes(); ++i) {
    const auto& d = decisions[i];
    total += state.z(i) * (d.charge_total_j() - d.discharge_j);
    if (model.topology().is_base_station(i)) p += d.grid_draw_j();
  }
  return total +
         state.V() *
             model.cost_at(state.slot()).scaled(cost_multiplier).value(p);
}

}  // namespace gc::core
