// NetworkModel: the immutable description of one problem instance — who the
// nodes are, what spectrum and energy hardware they have, which sessions
// must be served — plus the derived constants the Lyapunov analysis uses
// (beta of Section IV-A, B of eq. (34), gamma_max of Section IV-B).
#pragma once

#include <memory>
#include <vector>

#include "core/traffic.hpp"
#include "core/types.hpp"
#include "energy/battery.hpp"
#include "energy/cost.hpp"
#include "energy/grid.hpp"
#include "energy/node_energy.hpp"
#include "energy/renewable.hpp"
#include "net/capacity.hpp"
#include "net/link_prune.hpp"
#include "net/spectrum.hpp"
#include "net/topology.hpp"

namespace gc::core {

struct NodeParams {
  energy::NodeEnergyParams energy;
  energy::BatteryParams battery;
  energy::GridParams grid;
  std::shared_ptr<const energy::RenewableModel> renewable;
  // Radios at this node. The paper assumes 1 (constraint (22)); more
  // radios generalize (22) to "at most R simultaneous activities", with
  // the per-band rules (20)/(21) — one activity per (node, band) — then
  // enforced explicitly (they are only implied by (22) when R = 1).
  int num_radios = 1;
};

struct ModelConfig {
  double slot_seconds = 60.0;
  double packet_bits = 1e5;  // delta
  // Architecture switches used by the Fig. 2(f) baselines:
  // multihop=false restricts links to direct base-station -> user hops.
  bool multihop = true;
  // renewables=false zeroes every renewable input regardless of the node's
  // renewable model ("w/o renewable energy" baselines).
  bool renewables = true;
  // Cyclic electricity-tariff multipliers (extension; see
  // energy/tariff.hpp): slot t pays tariff[t mod N] * f(P). Empty = flat.
  std::vector<double> tariff_multipliers;
  // PHY policy (extension). The paper's design point is MinPowerFixedRate:
  // Foschini–Miljanic minimal powers meeting the SINR threshold exactly,
  // every surviving link at the fixed spectral efficiency log2(1+Gamma)
  // (eq. (1)). MaxPowerAdaptiveRate is the classic alternative: every
  // transmitter at P_max, links below the threshold dropped, survivors
  // carrying the Shannon rate W log2(1+SINR) of their realized SINR —
  // more throughput for more transmit energy (bench/ablation_phy_policy).
  enum class PhyPolicy { MinPowerFixedRate, MaxPowerAdaptiveRate };
  PhyPolicy phy_policy = PhyPolicy::MinPowerFixedRate;
  // Time-varying session demand v_s(t) (core/traffic.hpp). Null keeps the
  // constant-rate model: sample_inputs leaves the demand vector empty and
  // nothing downstream changes.
  std::shared_ptr<const TrafficModel> traffic;
  // Exact radio-range link pruning (net/link_prune.hpp; docs/ALGORITHM.md
  // "Why range pruning is exact"): the scheduler's candidate scans skip
  // (tx, rx) pairs no shared band could close at tx's maximum transmit
  // power. Pruned pairs carry zero rate under every slot realization, so
  // no capacity is lost — but the schedule still changes: radios the
  // unpruned scheduler wastes on doomed links (power control deschedules
  // them) go to real links instead, which perturbs the whole trajectory.
  // Off by default so default configs stay bit-identical to the paper
  // reproduction; flip it on for large topologies (--link-prune on).
  bool link_prune = false;
};

class NetworkModel {
 public:
  NetworkModel(net::Topology topology, net::Spectrum spectrum,
               net::RadioParams radio, std::vector<NodeParams> nodes,
               std::vector<Session> sessions, energy::QuadraticCost cost,
               ModelConfig config);

  const net::Topology& topology() const { return topo_; }
  // Mutable access for mobility models (sim/mobility.hpp): positions and
  // gains may move between slots; every derived constant (beta, B,
  // gamma_max) is position-independent so nothing else needs recomputing.
  net::Topology& mutable_topology() { return topo_; }
  const net::Spectrum& spectrum() const { return spectrum_; }
  const net::RadioParams& radio() const { return radio_; }
  // The base (multiplier-1) cost function.
  const energy::QuadraticCost& cost() const { return cost_; }
  // The effective cost function in a given slot (base scaled by the
  // tariff); equals cost() under a flat tariff.
  energy::QuadraticCost cost_at(int slot) const;
  double tariff_multiplier(int slot) const;
  double max_tariff_multiplier() const { return max_tariff_; }
  const ModelConfig& config() const { return config_; }

  int num_nodes() const { return topo_.num_nodes(); }
  int num_base_stations() const { return topo_.num_base_stations(); }
  int num_sessions() const { return static_cast<int>(sessions_.size()); }
  int num_bands() const { return spectrum_.num_bands(); }

  const NodeParams& node(int i) const { return nodes_[check_node(i)]; }
  const Session& session(int s) const { return sessions_[check_session(s)]; }
  const std::vector<Session>& sessions() const { return sessions_; }

  // v_s(t): the slot's sampled demand when the inputs carry one
  // (time-varying traffic), else the session's constant demand.
  double demand_packets(int s, const SlotInputs& inputs) const {
    check_session(s);
    return inputs.session_demand_packets.empty()
               ? sessions_[s].demand_packets
               : inputs.session_demand_packets[s];
  }

  double slot_seconds() const { return config_.slot_seconds; }
  double packet_bits() const { return config_.packet_bits; }

  // Whether (tx -> rx) may ever carry traffic under the architecture.
  bool link_allowed(int tx, int rx) const;

  // Range-pruned link neighborhood (ModelConfig::link_prune), or nullptr
  // when pruning is disabled. Built lazily and rebuilt when mobility moves
  // a node (keyed on Topology::version()). Not thread-safe against the
  // rebuild: call once from the owning thread before handing the map to
  // concurrent readers — the same single-writer contract as
  // mutable_topology().
  const net::LinkPruneMap* pruned_links() const;

  // Upper bound on W_m(t).
  double max_bandwidth_hz(int band) const;

  // c_ij^max * dt / delta: most packets link (i,j) could ever move in a
  // slot on ONE band, maximizing over the bands available at both ends (0
  // when the two nodes share no band or the link is not allowed).
  double max_link_packets(int tx, int rx) const;

  // Most packets the link can move using every radio/band combination the
  // endpoints could devote to it: min(radios, common bands) * best band.
  double max_link_packets_all_radios(int tx, int rx) const;

  int num_radios(int node) const { return nodes_[check_node(node)].num_radios; }

  // beta = max_ij c_ij^max * dt / delta (Section IV-A).
  double beta() const { return beta_; }

  // The drift bound constant B of eq. (34).
  double drift_constant_B() const { return drift_b_; }

  // gamma_max: max of f' over attainable P(t) (sum of base-station p_max).
  double gamma_max() const { return gamma_max_; }
  double max_total_grid_j() const { return max_total_grid_j_; }

  // z_i(t) = x_i(t) - shift_j(i, V); shift = V*gamma_max + d_i^max.
  double shift_j(int node, double V) const {
    return V * gamma_max_ + nodes_[check_node(node)].battery.max_discharge_j;
  }

  // Samples one slot's randomness (bandwidths, renewables, connectivity).
  SlotInputs sample_inputs(int slot, Rng& rng) const;

 private:
  int check_node(int i) const {
    GC_CHECK_MSG(i >= 0 && i < num_nodes(), "bad node " << i);
    return i;
  }
  int check_session(int s) const {
    GC_CHECK_MSG(s >= 0 && s < num_sessions(), "bad session " << s);
    return s;
  }

  net::Topology topo_;
  net::Spectrum spectrum_;
  net::RadioParams radio_;
  std::vector<NodeParams> nodes_;
  std::vector<Session> sessions_;
  energy::QuadraticCost cost_;
  ModelConfig config_;
  // Lazy link-prune cache (pruned_links()); mutable because building it is
  // observationally pure — the map is fully derived from topology/spectrum.
  mutable std::unique_ptr<net::LinkPruneMap> prune_;

  double beta_ = 0.0;
  double max_tariff_ = 1.0;
  double drift_b_ = 0.0;
  double gamma_max_ = 0.0;
  double max_total_grid_j_ = 0.0;
};

}  // namespace gc::core
