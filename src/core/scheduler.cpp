#include "core/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <unordered_map>
#include <utility>

#include "lp/simplex.hpp"
#include "net/power_control.hpp"
#include "obs/registry.hpp"
#include "util/thread_pool.hpp"

namespace gc::core {

namespace {

// S1 observability: how many LP relaxation passes SF needs, how often it
// falls back to rounding a fractional alpha, how much work the fill-in pass
// adds, and how many links power control deschedules.
struct SchedulerMetrics {
  obs::Counter& lp_passes = obs::registry().counter("sched.sf_lp_passes");
  obs::Counter& roundings = obs::registry().counter("sched.sf_roundings");
  obs::Counter& primary = obs::registry().counter("sched.primary_links");
  obs::Counter& fill_in = obs::registry().counter("sched.fill_in_links");
  obs::Counter& descheduled =
      obs::registry().counter("sched.power_descheduled_links");
  // Intra-slot cluster parallelism: clusters solved and the size of the
  // largest one (the parallel critical path).
  obs::Counter& clusters = obs::registry().counter("sched.sf_clusters");
  obs::Histogram& cluster_cands =
      obs::registry().histogram("sched.sf_cluster_candidates");
};

SchedulerMetrics& sched_metrics() {
  static thread_local SchedulerMetrics m;
  return m;
}

// Price of the energy the base-station endpoints of (tx, rx, band) would
// spend if activated: noise-limited minimal transmit power (the
// interference-free floor of constraint (24)) plus the receiver's constant
// draw, over one slot, times the marginal grid price. Zero when
// energy-aware scheduling is off (price = 0) or both endpoints are users
// (their grid energy never enters f(P), Sec. II-E).
double activation_penalty(const NetworkModel& model, int tx, int rx,
                          double bandwidth_hz, double price) {
  if (price <= 0.0) return 0.0;
  double energy_j = 0.0;
  if (model.topology().is_base_station(tx)) {
    const double p_min = model.radio().sinr_threshold *
                         model.radio().noise_psd_w_per_hz * bandwidth_hz /
                         model.topology().gain(tx, rx);
    energy_j += p_min * model.slot_seconds();
  }
  if (model.topology().is_base_station(rx))
    energy_j += model.node(rx).energy.recv_power_w * model.slot_seconds();
  return price * energy_j;
}

// Tracks the generalized radio constraints: at most num_radios(i)
// simultaneous activities per node (eq. (22) with R radios), and at most
// one activity per (node, band) (eqs. (20)/(21), which R = 1 makes
// implicit).
class RadioUsage {
 public:
  explicit RadioUsage(const NetworkModel& model)
      : model_(&model),
        used_(static_cast<std::size_t>(model.num_nodes()), 0),
        band_used_(static_cast<std::size_t>(model.num_nodes()) *
                       model.num_bands(),
                   0) {}

  RadioUsage(const NetworkModel& model,
             const std::vector<ScheduledLink>& schedule)
      : RadioUsage(model) {
    for (const auto& s : schedule) take(s.tx, s.rx, s.band);
  }

  bool can_take(int tx, int rx, int band) const {
    return used_[tx] < model_->num_radios(tx) &&
           used_[rx] < model_->num_radios(rx) && !band_used_[bi(tx, band)] &&
           !band_used_[bi(rx, band)];
  }
  void take(int tx, int rx, int band) {
    GC_CHECK(can_take(tx, rx, band));
    ++used_[tx];
    ++used_[rx];
    band_used_[bi(tx, band)] = 1;
    band_used_[bi(rx, band)] = 1;
  }
  void release(int tx, int rx, int band) {
    --used_[tx];
    --used_[rx];
    band_used_[bi(tx, band)] = 0;
    band_used_[bi(rx, band)] = 0;
  }
  bool node_saturated(int node) const {
    return used_[node] >= model_->num_radios(node);
  }
  int spare(int node) const { return model_->num_radios(node) - used_[node]; }

 private:
  std::size_t bi(int node, int band) const {
    GC_CHECK_MSG(band >= 0 && band < model_->num_bands(),
                 "bad band " << band << " at node " << node);
    return static_cast<std::size_t>(node) * model_->num_bands() + band;
  }
  const NetworkModel* model_;
  std::vector<int> used_;
  std::vector<char> band_used_;
};

}  // namespace

std::vector<CandidateLinkBand> build_candidates(const NetworkState& state,
                                                const SlotInputs& inputs) {
  const auto& model = state.model();
  const int n = model.num_nodes();
  const double pkts_per_bps = model.slot_seconds() / model.packet_bits();
  // Range pruning (net/link_prune.hpp): the neighbor lists are ascending,
  // so the pruned scan visits surviving pairs in the same order the dense
  // scan would — candidate order (and everything downstream) is unchanged.
  const net::LinkPruneMap* prune = model.pruned_links();
  std::vector<CandidateLinkBand> out;
  for (int i = 0; i < n; ++i) {
    if (inputs.node_is_inactive(i)) continue;  // down or asleep: no radio
    const auto scan_rx = [&](int j) {
      if (!model.link_allowed(i, j)) return;
      if (inputs.node_is_inactive(j) || inputs.link_is_faded(i, j, n)) return;
      const double h = state.h(i, j);
      if (h <= 0.0) return;  // SF fixes alpha = 0 when H_ij = 0
      for (int m = 0; m < model.num_bands(); ++m) {
        if (!model.spectrum().link_band_ok(i, j, m)) continue;
        const double c = net::nominal_capacity_bps(
            inputs.bandwidth_hz[m], model.radio().sinr_threshold);
        if (c <= 0.0) continue;
        // Exact Psi1-hat drain (beta * H * cap_packets). Primary
        // candidates are never energy-penalized: a positive H means
        // packets were already committed to this link and (27) obliges
        // serving them.
        const double weight = model.beta() * h * c * pkts_per_bps;
        if (weight <= 0.0) continue;
        out.push_back(CandidateLinkBand{i, j, m, c, weight});
      }
    };
    if (prune != nullptr) {
      for (int j : prune->out_neighbors(i)) scan_rx(j);
    } else {
      for (int j = 0; j < n; ++j)
        if (j != i) scan_rx(j);
    }
  }
  return out;
}

std::vector<CandidateLinkBand> build_fill_in_candidates(
    const NetworkState& state, const SlotInputs& inputs,
    const std::vector<ScheduledLink>& already_scheduled,
    double marginal_energy_price) {
  const auto& model = state.model();
  const int n = model.num_nodes();
  const RadioUsage usage(model, already_scheduled);

  // Range pruning: beyond shrinking the scan, dropping out-of-range pairs
  // here IMPROVES the schedule — an unpruned infeasible fill-in link would
  // occupy two radios until power control deschedules it, crowding out
  // feasible links (docs/ALGORITHM.md "Why range pruning is exact").
  const net::LinkPruneMap* prune = model.pruned_links();
  std::vector<CandidateLinkBand> out;
  for (int i = 0; i < n; ++i) {
    if (usage.node_saturated(i) || inputs.node_is_inactive(i)) continue;
    const auto scan_rx = [&](int j) {
      if (usage.node_saturated(j) || !model.link_allowed(i, j)) return;
      if (inputs.node_is_inactive(j) || inputs.link_is_faded(i, j, n)) return;
      // Best Psi3 differential any session could realize on (i, j), and
      // whether j is some session's destination (a delivery link: exempt
      // from the energy penalty, since (18) makes delivery an obligation
      // rather than an optimization choice).
      double best_diff = 0.0;
      bool delivery_link = false;
      for (int s = 0; s < model.num_sessions(); ++s) {
        if (i == model.session(s).destination) continue;  // (17)
        if (j == model.session(s).destination) delivery_link = true;
        best_diff = std::max(best_diff, state.q(i, s) - state.q(j, s) -
                                            model.beta() * state.h(i, j));
      }
      if (best_diff <= 0.0) return;
      for (int m = 0; m < model.num_bands(); ++m) {
        if (!model.spectrum().link_band_ok(i, j, m)) continue;
        if (!usage.can_take(i, j, m)) continue;
        const double c = net::nominal_capacity_bps(
            inputs.bandwidth_hz[m], model.radio().sinr_threshold);
        const double pkts = c * model.slot_seconds() / model.packet_bits();
        if (pkts < 1.0) continue;  // cannot carry a whole packet
        const double penalty =
            delivery_link ? 0.0
                          : activation_penalty(model, i, j,
                                               inputs.bandwidth_hz[m],
                                               marginal_energy_price);
        const double weight = best_diff * std::floor(pkts) - penalty;
        if (weight <= 0.0) continue;
        out.push_back(CandidateLinkBand{i, j, m, c, weight});
      }
    };
    if (prune != nullptr) {
      for (int j : prune->out_neighbors(i)) scan_rx(j);
    } else {
      for (int j = 0; j < n; ++j)
        if (j != i) scan_rx(j);
    }
  }
  return out;
}

namespace {

// Weight-sorted greedy over an explicit candidate list, respecting the
// radio budget already consumed by `schedule`.
void greedy_fill(const NetworkState& state,
                 std::vector<CandidateLinkBand> cands,
                 std::vector<ScheduledLink>& schedule) {
  std::sort(cands.begin(), cands.end(),
            [](const CandidateLinkBand& a, const CandidateLinkBand& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (a.tx != b.tx) return a.tx < b.tx;
              if (a.rx != b.rx) return a.rx < b.rx;
              return a.band < b.band;
            });
  RadioUsage usage(state.model(), schedule);
  for (const auto& c : cands) {
    if (!usage.can_take(c.tx, c.rx, c.band)) continue;
    usage.take(c.tx, c.rx, c.band);
    ScheduledLink link;
    link.tx = c.tx;
    link.rx = c.rx;
    link.band = c.band;
    link.capacity_bps = c.capacity_bps;
    schedule.push_back(link);
  }
}

}  // namespace

namespace {

// The (tx, rx, band) identity of a candidate, used to match this slot's
// first-pass variables against the previous slot's last-pass variables for
// the cross-slot warm start. 24/24/16 bits is room for 16M nodes.
std::uint64_t candidate_key(const CandidateLinkBand& c) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.tx))
          << 40) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.rx))
          << 16) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.band));
}

// One SF relax-round-compact series over `cands`: fixes links into
// `schedule`, consuming `usage`. The within-series warm maps flow through
// `ws` exactly as before; `warm_keys` additionally seeds the first pass
// from the previous slot's last relaxation (see scheduler.hpp) and carries
// this series' last-pass keys back out — untouched when no LP was solved,
// so an empty slot keeps the previous carry alive.
void sf_series(const NetworkState& state,
               std::vector<CandidateLinkBand> cands, RadioUsage& usage,
               const lp::Options& lp_options, lp::Workspace& ws,
               std::vector<ScheduledLink>& schedule,
               std::vector<std::uint64_t>* warm_keys) {
  const auto& model = state.model();
  bool first_pass = true;
  std::vector<std::uint64_t> last_keys;

  while (!cands.empty()) {
    sched_metrics().lp_passes.add();
    if (first_pass && warm_keys != nullptr && !warm_keys->empty()) {
      // Cross-slot hint: map each candidate onto the same (tx, rx, band)
      // variable of the previous slot's final relaxation, if it recurs.
      std::unordered_map<std::uint64_t, int> prev;
      prev.reserve(warm_keys->size());
      for (std::size_t o = 0; o < warm_keys->size(); ++o)
        prev.emplace((*warm_keys)[o], static_cast<int>(o));
      std::vector<int> map(cands.size(), -1);
      for (std::size_t v = 0; v < cands.size(); ++v) {
        const auto it = prev.find(candidate_key(cands[v]));
        if (it != prev.end()) map[v] = it->second;
      }
      ws.set_warm_start(std::move(map), /*cross_slot=*/true);
    }
    first_pass = false;
    if (warm_keys != nullptr) {
      last_keys.clear();
      last_keys.reserve(cands.size());
      for (const auto& c : cands) last_keys.push_back(candidate_key(c));
    }

    // LP relaxation: maximize sum w_c alpha_c s.t. the remaining radio
    // budget per node and one activity per (node, band).
    lp::Model m;
    for (const auto& c : cands) m.add_variable(0.0, 1.0, -c.weight);
    std::vector<int> node_row(static_cast<std::size_t>(model.num_nodes()),
                              -1);
    std::vector<int> band_row(
        static_cast<std::size_t>(model.num_nodes()) * model.num_bands(), -1);
    for (std::size_t v = 0; v < cands.size(); ++v) {
      for (int node : {cands[v].tx, cands[v].rx}) {
        if (node_row[node] < 0)
          node_row[node] =
              m.add_row(lp::Sense::LessEqual, usage.spare(node));
        m.set_coeff(node_row[node], static_cast<int>(v), 1.0);
        const std::size_t bi =
            static_cast<std::size_t>(node) * model.num_bands() +
            cands[v].band;
        if (band_row[bi] < 0)
          band_row[bi] = m.add_row(lp::Sense::LessEqual, 1.0);
        m.set_coeff(band_row[bi], static_cast<int>(v), 1.0);
      }
    }
    const lp::Solution sol = lp::solve(m, lp_options, ws);
    GC_CHECK_MSG(sol.status == lp::Status::Optimal,
                 "SF relaxation not optimal at slot "
                     << state.slot() << ": " << lp::to_string(sol.status));

    // Fix every alpha already at 1; if none, round the largest fractional.
    std::vector<std::size_t> to_fix;
    for (std::size_t v = 0; v < cands.size(); ++v)
      if (sol.x[v] >= 1.0 - 1e-6) to_fix.push_back(v);
    if (to_fix.empty()) {
      std::size_t best = 0;
      for (std::size_t v = 1; v < cands.size(); ++v)
        if (sol.x[v] > sol.x[best]) best = v;
      to_fix.push_back(best);
      sched_metrics().roundings.add();
    }

    for (std::size_t v : to_fix) {
      const auto& f = cands[v];
      // Two alpha = 1 never conflict in a feasible LP point, but a rounded
      // fractional may conflict with one fixed this same round.
      if (!usage.can_take(f.tx, f.rx, f.band)) continue;
      usage.take(f.tx, f.rx, f.band);
      ScheduledLink link;
      link.tx = f.tx;
      link.rx = f.rx;
      link.band = f.band;
      link.capacity_bps = f.capacity_bps;
      schedule.push_back(link);
    }
    // Compact the surviving candidates, recording where each one sat in
    // the LP just solved: that correspondence is exactly the warm-start
    // map for the next (strictly smaller) relaxation.
    std::vector<int> warm_map;
    warm_map.reserve(cands.size());
    std::size_t kept = 0;
    for (std::size_t v = 0; v < cands.size(); ++v) {
      if (!usage.can_take(cands[v].tx, cands[v].rx, cands[v].band)) continue;
      cands[kept++] = cands[v];
      warm_map.push_back(static_cast<int>(v));
    }
    cands.resize(kept);
    if (!cands.empty()) ws.set_warm_start(std::move(warm_map));
  }
  if (warm_keys != nullptr && !last_keys.empty())
    *warm_keys = std::move(last_keys);
}

}  // namespace

std::vector<ScheduledLink> sequential_fix_schedule(
    const NetworkState& state, const SlotInputs& inputs, bool fill_in,
    double marginal_energy_price, const lp::Options& lp_options,
    lp::Workspace* workspace, std::vector<std::uint64_t>* warm_keys) {
  std::vector<ScheduledLink> schedule;
  RadioUsage usage(state.model());
  // All passes solve through one workspace (caller's, or a local fallback)
  // so buffers are reused; each compaction leaves a warm-start map for the
  // next pass. Without `warm_keys` the first pass is always cold.
  lp::Workspace local_ws;
  lp::Workspace& ws = workspace != nullptr ? *workspace : local_ws;
  sf_series(state, build_candidates(state, inputs), usage, lp_options, ws,
            schedule, warm_keys);
  sched_metrics().primary.add(static_cast<double>(schedule.size()));
  // Psi3-aware fill-in over radios SF left idle (see
  // build_fill_in_candidates for why the paper's S1 alone deadlocks).
  if (fill_in) {
    const std::size_t before = schedule.size();
    greedy_fill(state,
                build_fill_in_candidates(state, inputs, schedule,
                                         marginal_energy_price),
                schedule);
    sched_metrics().fill_in.add(static_cast<double>(schedule.size() - before));
  }
  return schedule;
}

namespace {

// Buffers per-cluster SolveStats so the main thread can forward them to
// the caller's sink in cluster order, independent of worker scheduling.
struct BufferedStatsSink : lp::SolveStatsSink {
  std::vector<lp::SolveStats> records;
  void on_solve(const lp::SolveStats& stats, const char*) override {
    records.push_back(stats);
  }
};

}  // namespace

std::vector<ScheduledLink> sequential_fix_schedule_clustered(
    const NetworkState& state, const SlotInputs& inputs,
    util::ThreadPool& pool, bool fill_in, double marginal_energy_price,
    const lp::Options& lp_options, lp::SolveStatsSink* stats_sink) {
  const auto& model = state.model();
  const std::vector<CandidateLinkBand> cands =
      build_candidates(state, inputs);

  // Connected components of the endpoint-sharing graph via union-find,
  // ordered by their smallest member node so cluster identity is a pure
  // function of the candidate set.
  const int n = model.num_nodes();
  std::vector<int> parent(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) parent[i] = i;
  const auto find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& c : cands) {
    const int a = find(c.tx), b = find(c.rx);
    // Union by smaller index: the root IS the smallest member, giving the
    // deterministic cluster order for free.
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
  std::vector<int> roots;  // ascending = cluster order
  std::unordered_map<int, std::size_t> cluster_of;
  for (const auto& c : cands) {
    const int r = find(c.tx);
    if (cluster_of.emplace(r, roots.size()).second) roots.push_back(r);
  }
  std::vector<std::size_t> order(roots.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return roots[a] < roots[b];
  });
  std::vector<std::size_t> rank(roots.size());
  for (std::size_t i = 0; i < order.size(); ++i) rank[order[i]] = i;

  const std::size_t k = roots.size();
  std::vector<std::vector<CandidateLinkBand>> cluster_cands(k);
  for (const auto& c : cands)
    cluster_cands[rank[cluster_of[find(c.tx)]]].push_back(c);

  sched_metrics().clusters.add(static_cast<double>(k));
  for (const auto& cc : cluster_cands)
    sched_metrics().cluster_cands.observe(static_cast<double>(cc.size()));

  // One SF series per cluster. Clusters are node-disjoint, so each job's
  // fresh RadioUsage sees exactly the budget the joint series would.
  std::vector<std::vector<ScheduledLink>> fragments(k);
  std::vector<BufferedStatsSink> sinks(k);
  std::vector<std::exception_ptr> errors(k);
  for (std::size_t c = 0; c < k; ++c)
    pool.submit([&, c] {
      try {
        lp::Workspace ws;
        ws.set_stats_context("s1");
        if (stats_sink != nullptr) ws.set_stats_sink(&sinks[c]);
        RadioUsage usage(model);
        sf_series(state, std::move(cluster_cands[c]), usage, lp_options, ws,
                  fragments[c], nullptr);
      } catch (...) {
        errors[c] = std::current_exception();
      }
    });
  pool.wait_idle();
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);

  // Deterministic merge: cluster order, then the order the series fixed
  // links within each cluster.
  std::vector<ScheduledLink> schedule;
  for (std::size_t c = 0; c < k; ++c) {
    schedule.insert(schedule.end(), fragments[c].begin(), fragments[c].end());
    if (stats_sink != nullptr)
      for (const auto& rec : sinks[c].records) stats_sink->on_solve(rec, "s1");
  }
  sched_metrics().primary.add(static_cast<double>(schedule.size()));

  if (fill_in) {
    const std::size_t before = schedule.size();
    greedy_fill(state,
                build_fill_in_candidates(state, inputs, schedule,
                                         marginal_energy_price),
                schedule);
    sched_metrics().fill_in.add(static_cast<double>(schedule.size() - before));
  }
  return schedule;
}

std::vector<ScheduledLink> greedy_schedule(const NetworkState& state,
                                           const SlotInputs& inputs,
                                           bool fill_in,
                                           double marginal_energy_price) {
  std::vector<ScheduledLink> schedule;
  greedy_fill(state, build_candidates(state, inputs), schedule);
  sched_metrics().primary.add(static_cast<double>(schedule.size()));
  if (fill_in) {
    const std::size_t before = schedule.size();
    greedy_fill(state,
                build_fill_in_candidates(state, inputs, schedule,
                                         marginal_energy_price),
                schedule);
    sched_metrics().fill_in.add(static_cast<double>(schedule.size() - before));
  }
  return schedule;
}

namespace {

void exhaustive_rec(const std::vector<CandidateLinkBand>& cands,
                    std::size_t idx, RadioUsage& usage,
                    std::vector<std::size_t>& chosen, double weight,
                    std::vector<std::size_t>& best_chosen,
                    double& best_weight) {
  if (idx == cands.size()) {
    if (weight > best_weight) {
      best_weight = weight;
      best_chosen = chosen;
    }
    return;
  }
  // Upper bound: all remaining weights; prune when it cannot beat the best.
  double remaining = 0.0;
  for (std::size_t v = idx; v < cands.size(); ++v)
    remaining += cands[v].weight;
  if (weight + remaining <= best_weight) return;

  const auto& c = cands[idx];
  if (usage.can_take(c.tx, c.rx, c.band)) {
    usage.take(c.tx, c.rx, c.band);
    chosen.push_back(idx);
    exhaustive_rec(cands, idx + 1, usage, chosen, weight + c.weight,
                   best_chosen, best_weight);
    chosen.pop_back();
    usage.release(c.tx, c.rx, c.band);
  }
  exhaustive_rec(cands, idx + 1, usage, chosen, weight, best_chosen,
                 best_weight);
}

}  // namespace

std::vector<ScheduledLink> exhaustive_schedule(const NetworkState& state,
                                               const SlotInputs& inputs) {
  std::vector<CandidateLinkBand> cands = build_candidates(state, inputs);
  GC_CHECK_MSG(cands.size() <= 24,
               "exhaustive scheduler is for small instances only ("
                   << cands.size() << " candidates)");
  RadioUsage usage(state.model());
  std::vector<std::size_t> chosen, best_chosen;
  double best_weight = -1.0;
  exhaustive_rec(cands, 0, usage, chosen, 0.0, best_chosen, best_weight);
  std::vector<ScheduledLink> schedule;
  for (std::size_t v : best_chosen) {
    ScheduledLink link;
    link.tx = cands[v].tx;
    link.rx = cands[v].rx;
    link.band = cands[v].band;
    link.capacity_bps = cands[v].capacity_bps;
    schedule.push_back(link);
  }
  return schedule;
}

double schedule_weight(const NetworkState& state,
                       const std::vector<ScheduledLink>& schedule,
                       const SlotInputs& inputs) {
  const auto& model = state.model();
  double total = 0.0;
  for (const auto& s : schedule) {
    const double c = net::nominal_capacity_bps(inputs.bandwidth_hz[s.band],
                                               model.radio().sinr_threshold);
    total += state.h(s.tx, s.rx) * c;
  }
  return total;
}

namespace {

// MaxPowerAdaptiveRate: every transmitter at P_max; links whose realized
// SINR clears the threshold carry the Shannon rate of that SINR, the rest
// are dropped (capacity 0 per eq. (1)). Dropping a link only raises the
// SINR of the others, so one pass from the weakest link up converges.
void assign_powers_max_adaptive(const NetworkModel& model,
                                const SlotInputs& inputs, int band,
                                std::vector<std::size_t> on_band,
                                const std::vector<ScheduledLink>& schedule,
                                std::vector<ScheduledLink>& surviving) {
  const double w = inputs.bandwidth_hz[band];
  while (!on_band.empty()) {
    std::vector<net::Transmission> txs;
    txs.reserve(on_band.size());
    for (std::size_t idx : on_band) {
      const auto& s = schedule[idx];
      txs.push_back(net::Transmission{
          s.tx, s.rx, model.node(s.tx).energy.max_tx_power_w});
    }
    // Find the weakest link; if it clears the threshold, everyone does.
    double worst = 0.0;
    std::size_t worst_k = 0;
    std::vector<double> sinrs(on_band.size());
    for (std::size_t k = 0; k < on_band.size(); ++k) {
      sinrs[k] = net::sinr(model.topology(), txs, k, w, model.radio());
      if (k == 0 || sinrs[k] < worst) {
        worst = sinrs[k];
        worst_k = k;
      }
    }
    if (worst >= model.radio().sinr_threshold) {
      for (std::size_t k = 0; k < on_band.size(); ++k) {
        ScheduledLink s = schedule[on_band[k]];
        s.power_w = model.node(s.tx).energy.max_tx_power_w;
        s.capacity_bps = w * std::log2(1.0 + sinrs[k]);
        s.capacity_packets = std::floor(
            s.capacity_bps * model.slot_seconds() / model.packet_bits());
        surviving.push_back(s);
      }
      return;
    }
    on_band.erase(on_band.begin() + static_cast<long>(worst_k));
  }
}

}  // namespace

void assign_powers(const NetworkModel& model, const SlotInputs& inputs,
                   std::vector<ScheduledLink>& schedule) {
  std::vector<ScheduledLink> surviving;
  for (int band = 0; band < model.num_bands(); ++band) {
    std::vector<std::size_t> on_band;
    for (std::size_t i = 0; i < schedule.size(); ++i)
      if (schedule[i].band == band) on_band.push_back(i);
    if (on_band.empty()) continue;

    if (model.config().phy_policy ==
        ModelConfig::PhyPolicy::MaxPowerAdaptiveRate) {
      assign_powers_max_adaptive(model, inputs, band, std::move(on_band),
                                 schedule, surviving);
      continue;
    }

    // Deschedule the violating link and retry until feasible; each retry
    // removes one link so this terminates.
    while (!on_band.empty()) {
      std::vector<net::CoBandLink> links;
      links.reserve(on_band.size());
      for (std::size_t idx : on_band) {
        const auto& s = schedule[idx];
        links.push_back(net::CoBandLink{
            s.tx, s.rx, model.node(s.tx).energy.max_tx_power_w});
      }
      const auto pc = net::solve_min_powers(
          model.topology(), links, inputs.bandwidth_hz[band], model.radio());
      if (pc.feasible) {
        for (std::size_t k = 0; k < on_band.size(); ++k) {
          ScheduledLink s = schedule[on_band[k]];
          s.power_w = pc.powers_w[k];
          s.capacity_bps = net::nominal_capacity_bps(
              inputs.bandwidth_hz[band], model.radio().sinr_threshold);
          s.capacity_packets = std::floor(
              s.capacity_bps * model.slot_seconds() / model.packet_bits());
          surviving.push_back(s);
        }
        break;
      }
      GC_CHECK(pc.violating_link >= 0);
      on_band.erase(on_band.begin() + pc.violating_link);
    }
  }
  sched_metrics().descheduled.add(
      static_cast<double>(schedule.size() - surviving.size()));
  schedule = std::move(surviving);
}

}  // namespace gc::core
