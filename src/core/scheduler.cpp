#include "core/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "lp/simplex.hpp"
#include "net/power_control.hpp"
#include "obs/registry.hpp"

namespace gc::core {

namespace {

// S1 observability: how many LP relaxation passes SF needs, how often it
// falls back to rounding a fractional alpha, how much work the fill-in pass
// adds, and how many links power control deschedules.
struct SchedulerMetrics {
  obs::Counter& lp_passes = obs::registry().counter("sched.sf_lp_passes");
  obs::Counter& roundings = obs::registry().counter("sched.sf_roundings");
  obs::Counter& primary = obs::registry().counter("sched.primary_links");
  obs::Counter& fill_in = obs::registry().counter("sched.fill_in_links");
  obs::Counter& descheduled =
      obs::registry().counter("sched.power_descheduled_links");
};

SchedulerMetrics& sched_metrics() {
  static thread_local SchedulerMetrics m;
  return m;
}

// Price of the energy the base-station endpoints of (tx, rx, band) would
// spend if activated: noise-limited minimal transmit power (the
// interference-free floor of constraint (24)) plus the receiver's constant
// draw, over one slot, times the marginal grid price. Zero when
// energy-aware scheduling is off (price = 0) or both endpoints are users
// (their grid energy never enters f(P), Sec. II-E).
double activation_penalty(const NetworkModel& model, int tx, int rx,
                          double bandwidth_hz, double price) {
  if (price <= 0.0) return 0.0;
  double energy_j = 0.0;
  if (model.topology().is_base_station(tx)) {
    const double p_min = model.radio().sinr_threshold *
                         model.radio().noise_psd_w_per_hz * bandwidth_hz /
                         model.topology().gain(tx, rx);
    energy_j += p_min * model.slot_seconds();
  }
  if (model.topology().is_base_station(rx))
    energy_j += model.node(rx).energy.recv_power_w * model.slot_seconds();
  return price * energy_j;
}

// Tracks the generalized radio constraints: at most num_radios(i)
// simultaneous activities per node (eq. (22) with R radios), and at most
// one activity per (node, band) (eqs. (20)/(21), which R = 1 makes
// implicit).
class RadioUsage {
 public:
  explicit RadioUsage(const NetworkModel& model)
      : model_(&model),
        used_(static_cast<std::size_t>(model.num_nodes()), 0),
        band_used_(static_cast<std::size_t>(model.num_nodes()) *
                       model.num_bands(),
                   0) {}

  RadioUsage(const NetworkModel& model,
             const std::vector<ScheduledLink>& schedule)
      : RadioUsage(model) {
    for (const auto& s : schedule) take(s.tx, s.rx, s.band);
  }

  bool can_take(int tx, int rx, int band) const {
    return used_[tx] < model_->num_radios(tx) &&
           used_[rx] < model_->num_radios(rx) && !band_used_[bi(tx, band)] &&
           !band_used_[bi(rx, band)];
  }
  void take(int tx, int rx, int band) {
    GC_CHECK(can_take(tx, rx, band));
    ++used_[tx];
    ++used_[rx];
    band_used_[bi(tx, band)] = 1;
    band_used_[bi(rx, band)] = 1;
  }
  void release(int tx, int rx, int band) {
    --used_[tx];
    --used_[rx];
    band_used_[bi(tx, band)] = 0;
    band_used_[bi(rx, band)] = 0;
  }
  bool node_saturated(int node) const {
    return used_[node] >= model_->num_radios(node);
  }
  int spare(int node) const { return model_->num_radios(node) - used_[node]; }

 private:
  std::size_t bi(int node, int band) const {
    GC_CHECK_MSG(band >= 0 && band < model_->num_bands(),
                 "bad band " << band << " at node " << node);
    return static_cast<std::size_t>(node) * model_->num_bands() + band;
  }
  const NetworkModel* model_;
  std::vector<int> used_;
  std::vector<char> band_used_;
};

}  // namespace

std::vector<CandidateLinkBand> build_candidates(const NetworkState& state,
                                                const SlotInputs& inputs) {
  const auto& model = state.model();
  const int n = model.num_nodes();
  const double pkts_per_bps = model.slot_seconds() / model.packet_bits();
  std::vector<CandidateLinkBand> out;
  for (int i = 0; i < n; ++i) {
    if (inputs.node_is_down(i)) continue;
    for (int j = 0; j < n; ++j) {
      if (!model.link_allowed(i, j)) continue;
      if (inputs.node_is_down(j) || inputs.link_is_faded(i, j, n)) continue;
      const double h = state.h(i, j);
      if (h <= 0.0) continue;  // SF fixes alpha = 0 when H_ij = 0
      for (int m = 0; m < model.num_bands(); ++m) {
        if (!model.spectrum().link_band_ok(i, j, m)) continue;
        const double c = net::nominal_capacity_bps(
            inputs.bandwidth_hz[m], model.radio().sinr_threshold);
        if (c <= 0.0) continue;
        // Exact Psi1-hat drain (beta * H * cap_packets). Primary
        // candidates are never energy-penalized: a positive H means
        // packets were already committed to this link and (27) obliges
        // serving them.
        const double weight = model.beta() * h * c * pkts_per_bps;
        if (weight <= 0.0) continue;
        out.push_back(CandidateLinkBand{i, j, m, c, weight});
      }
    }
  }
  return out;
}

std::vector<CandidateLinkBand> build_fill_in_candidates(
    const NetworkState& state, const SlotInputs& inputs,
    const std::vector<ScheduledLink>& already_scheduled,
    double marginal_energy_price) {
  const auto& model = state.model();
  const int n = model.num_nodes();
  const RadioUsage usage(model, already_scheduled);

  std::vector<CandidateLinkBand> out;
  for (int i = 0; i < n; ++i) {
    if (usage.node_saturated(i) || inputs.node_is_down(i)) continue;
    for (int j = 0; j < n; ++j) {
      if (j == i || usage.node_saturated(j) || !model.link_allowed(i, j))
        continue;
      if (inputs.node_is_down(j) || inputs.link_is_faded(i, j, n)) continue;
      // Best Psi3 differential any session could realize on (i, j), and
      // whether j is some session's destination (a delivery link: exempt
      // from the energy penalty, since (18) makes delivery an obligation
      // rather than an optimization choice).
      double best_diff = 0.0;
      bool delivery_link = false;
      for (int s = 0; s < model.num_sessions(); ++s) {
        if (i == model.session(s).destination) continue;  // (17)
        if (j == model.session(s).destination) delivery_link = true;
        best_diff = std::max(best_diff, state.q(i, s) - state.q(j, s) -
                                            model.beta() * state.h(i, j));
      }
      if (best_diff <= 0.0) continue;
      for (int m = 0; m < model.num_bands(); ++m) {
        if (!model.spectrum().link_band_ok(i, j, m)) continue;
        if (!usage.can_take(i, j, m)) continue;
        const double c = net::nominal_capacity_bps(
            inputs.bandwidth_hz[m], model.radio().sinr_threshold);
        const double pkts = c * model.slot_seconds() / model.packet_bits();
        if (pkts < 1.0) continue;  // cannot carry a whole packet
        const double penalty =
            delivery_link ? 0.0
                          : activation_penalty(model, i, j,
                                               inputs.bandwidth_hz[m],
                                               marginal_energy_price);
        const double weight = best_diff * std::floor(pkts) - penalty;
        if (weight <= 0.0) continue;
        out.push_back(CandidateLinkBand{i, j, m, c, weight});
      }
    }
  }
  return out;
}

namespace {

// Weight-sorted greedy over an explicit candidate list, respecting the
// radio budget already consumed by `schedule`.
void greedy_fill(const NetworkState& state,
                 std::vector<CandidateLinkBand> cands,
                 std::vector<ScheduledLink>& schedule) {
  std::sort(cands.begin(), cands.end(),
            [](const CandidateLinkBand& a, const CandidateLinkBand& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (a.tx != b.tx) return a.tx < b.tx;
              if (a.rx != b.rx) return a.rx < b.rx;
              return a.band < b.band;
            });
  RadioUsage usage(state.model(), schedule);
  for (const auto& c : cands) {
    if (!usage.can_take(c.tx, c.rx, c.band)) continue;
    usage.take(c.tx, c.rx, c.band);
    ScheduledLink link;
    link.tx = c.tx;
    link.rx = c.rx;
    link.band = c.band;
    link.capacity_bps = c.capacity_bps;
    schedule.push_back(link);
  }
}

}  // namespace

std::vector<ScheduledLink> sequential_fix_schedule(
    const NetworkState& state, const SlotInputs& inputs, bool fill_in,
    double marginal_energy_price, const lp::Options& lp_options,
    lp::Workspace* workspace) {
  const auto& model = state.model();
  std::vector<CandidateLinkBand> cands = build_candidates(state, inputs);
  std::vector<ScheduledLink> schedule;
  RadioUsage usage(model);
  // All passes solve through one workspace (caller's, or a local fallback)
  // so buffers are reused; each compaction below leaves a warm-start map
  // for the next pass. The first pass is always cold — no hint can be
  // pending (set_warm_start only fires mid-loop and solve() consumes it).
  lp::Workspace local_ws;
  lp::Workspace& ws = workspace != nullptr ? *workspace : local_ws;

  while (!cands.empty()) {
    sched_metrics().lp_passes.add();
    // LP relaxation: maximize sum w_c alpha_c s.t. the remaining radio
    // budget per node and one activity per (node, band).
    lp::Model m;
    for (const auto& c : cands) m.add_variable(0.0, 1.0, -c.weight);
    std::vector<int> node_row(static_cast<std::size_t>(model.num_nodes()),
                              -1);
    std::vector<int> band_row(
        static_cast<std::size_t>(model.num_nodes()) * model.num_bands(), -1);
    for (std::size_t v = 0; v < cands.size(); ++v) {
      for (int node : {cands[v].tx, cands[v].rx}) {
        if (node_row[node] < 0)
          node_row[node] =
              m.add_row(lp::Sense::LessEqual, usage.spare(node));
        m.set_coeff(node_row[node], static_cast<int>(v), 1.0);
        const std::size_t bi =
            static_cast<std::size_t>(node) * model.num_bands() +
            cands[v].band;
        if (band_row[bi] < 0)
          band_row[bi] = m.add_row(lp::Sense::LessEqual, 1.0);
        m.set_coeff(band_row[bi], static_cast<int>(v), 1.0);
      }
    }
    const lp::Solution sol = lp::solve(m, lp_options, ws);
    GC_CHECK_MSG(sol.status == lp::Status::Optimal,
                 "SF relaxation not optimal at slot "
                     << state.slot() << ": " << lp::to_string(sol.status));

    // Fix every alpha already at 1; if none, round the largest fractional.
    std::vector<std::size_t> to_fix;
    for (std::size_t v = 0; v < cands.size(); ++v)
      if (sol.x[v] >= 1.0 - 1e-6) to_fix.push_back(v);
    if (to_fix.empty()) {
      std::size_t best = 0;
      for (std::size_t v = 1; v < cands.size(); ++v)
        if (sol.x[v] > sol.x[best]) best = v;
      to_fix.push_back(best);
      sched_metrics().roundings.add();
    }

    for (std::size_t v : to_fix) {
      const auto& f = cands[v];
      // Two alpha = 1 never conflict in a feasible LP point, but a rounded
      // fractional may conflict with one fixed this same round.
      if (!usage.can_take(f.tx, f.rx, f.band)) continue;
      usage.take(f.tx, f.rx, f.band);
      ScheduledLink link;
      link.tx = f.tx;
      link.rx = f.rx;
      link.band = f.band;
      link.capacity_bps = f.capacity_bps;
      schedule.push_back(link);
    }
    // Compact the surviving candidates, recording where each one sat in
    // the LP just solved: that correspondence is exactly the warm-start
    // map for the next (strictly smaller) relaxation.
    std::vector<int> warm_map;
    warm_map.reserve(cands.size());
    std::size_t kept = 0;
    for (std::size_t v = 0; v < cands.size(); ++v) {
      if (!usage.can_take(cands[v].tx, cands[v].rx, cands[v].band)) continue;
      cands[kept++] = cands[v];
      warm_map.push_back(static_cast<int>(v));
    }
    cands.resize(kept);
    if (!cands.empty()) ws.set_warm_start(std::move(warm_map));
  }
  sched_metrics().primary.add(static_cast<double>(schedule.size()));
  // Psi3-aware fill-in over radios SF left idle (see
  // build_fill_in_candidates for why the paper's S1 alone deadlocks).
  if (fill_in) {
    const std::size_t before = schedule.size();
    greedy_fill(state,
                build_fill_in_candidates(state, inputs, schedule,
                                         marginal_energy_price),
                schedule);
    sched_metrics().fill_in.add(static_cast<double>(schedule.size() - before));
  }
  return schedule;
}

std::vector<ScheduledLink> greedy_schedule(const NetworkState& state,
                                           const SlotInputs& inputs,
                                           bool fill_in,
                                           double marginal_energy_price) {
  std::vector<ScheduledLink> schedule;
  greedy_fill(state, build_candidates(state, inputs), schedule);
  sched_metrics().primary.add(static_cast<double>(schedule.size()));
  if (fill_in) {
    const std::size_t before = schedule.size();
    greedy_fill(state,
                build_fill_in_candidates(state, inputs, schedule,
                                         marginal_energy_price),
                schedule);
    sched_metrics().fill_in.add(static_cast<double>(schedule.size() - before));
  }
  return schedule;
}

namespace {

void exhaustive_rec(const std::vector<CandidateLinkBand>& cands,
                    std::size_t idx, RadioUsage& usage,
                    std::vector<std::size_t>& chosen, double weight,
                    std::vector<std::size_t>& best_chosen,
                    double& best_weight) {
  if (idx == cands.size()) {
    if (weight > best_weight) {
      best_weight = weight;
      best_chosen = chosen;
    }
    return;
  }
  // Upper bound: all remaining weights; prune when it cannot beat the best.
  double remaining = 0.0;
  for (std::size_t v = idx; v < cands.size(); ++v)
    remaining += cands[v].weight;
  if (weight + remaining <= best_weight) return;

  const auto& c = cands[idx];
  if (usage.can_take(c.tx, c.rx, c.band)) {
    usage.take(c.tx, c.rx, c.band);
    chosen.push_back(idx);
    exhaustive_rec(cands, idx + 1, usage, chosen, weight + c.weight,
                   best_chosen, best_weight);
    chosen.pop_back();
    usage.release(c.tx, c.rx, c.band);
  }
  exhaustive_rec(cands, idx + 1, usage, chosen, weight, best_chosen,
                 best_weight);
}

}  // namespace

std::vector<ScheduledLink> exhaustive_schedule(const NetworkState& state,
                                               const SlotInputs& inputs) {
  std::vector<CandidateLinkBand> cands = build_candidates(state, inputs);
  GC_CHECK_MSG(cands.size() <= 24,
               "exhaustive scheduler is for small instances only ("
                   << cands.size() << " candidates)");
  RadioUsage usage(state.model());
  std::vector<std::size_t> chosen, best_chosen;
  double best_weight = -1.0;
  exhaustive_rec(cands, 0, usage, chosen, 0.0, best_chosen, best_weight);
  std::vector<ScheduledLink> schedule;
  for (std::size_t v : best_chosen) {
    ScheduledLink link;
    link.tx = cands[v].tx;
    link.rx = cands[v].rx;
    link.band = cands[v].band;
    link.capacity_bps = cands[v].capacity_bps;
    schedule.push_back(link);
  }
  return schedule;
}

double schedule_weight(const NetworkState& state,
                       const std::vector<ScheduledLink>& schedule,
                       const SlotInputs& inputs) {
  const auto& model = state.model();
  double total = 0.0;
  for (const auto& s : schedule) {
    const double c = net::nominal_capacity_bps(inputs.bandwidth_hz[s.band],
                                               model.radio().sinr_threshold);
    total += state.h(s.tx, s.rx) * c;
  }
  return total;
}

namespace {

// MaxPowerAdaptiveRate: every transmitter at P_max; links whose realized
// SINR clears the threshold carry the Shannon rate of that SINR, the rest
// are dropped (capacity 0 per eq. (1)). Dropping a link only raises the
// SINR of the others, so one pass from the weakest link up converges.
void assign_powers_max_adaptive(const NetworkModel& model,
                                const SlotInputs& inputs, int band,
                                std::vector<std::size_t> on_band,
                                const std::vector<ScheduledLink>& schedule,
                                std::vector<ScheduledLink>& surviving) {
  const double w = inputs.bandwidth_hz[band];
  while (!on_band.empty()) {
    std::vector<net::Transmission> txs;
    txs.reserve(on_band.size());
    for (std::size_t idx : on_band) {
      const auto& s = schedule[idx];
      txs.push_back(net::Transmission{
          s.tx, s.rx, model.node(s.tx).energy.max_tx_power_w});
    }
    // Find the weakest link; if it clears the threshold, everyone does.
    double worst = 0.0;
    std::size_t worst_k = 0;
    std::vector<double> sinrs(on_band.size());
    for (std::size_t k = 0; k < on_band.size(); ++k) {
      sinrs[k] = net::sinr(model.topology(), txs, k, w, model.radio());
      if (k == 0 || sinrs[k] < worst) {
        worst = sinrs[k];
        worst_k = k;
      }
    }
    if (worst >= model.radio().sinr_threshold) {
      for (std::size_t k = 0; k < on_band.size(); ++k) {
        ScheduledLink s = schedule[on_band[k]];
        s.power_w = model.node(s.tx).energy.max_tx_power_w;
        s.capacity_bps = w * std::log2(1.0 + sinrs[k]);
        s.capacity_packets = std::floor(
            s.capacity_bps * model.slot_seconds() / model.packet_bits());
        surviving.push_back(s);
      }
      return;
    }
    on_band.erase(on_band.begin() + static_cast<long>(worst_k));
  }
}

}  // namespace

void assign_powers(const NetworkModel& model, const SlotInputs& inputs,
                   std::vector<ScheduledLink>& schedule) {
  std::vector<ScheduledLink> surviving;
  for (int band = 0; band < model.num_bands(); ++band) {
    std::vector<std::size_t> on_band;
    for (std::size_t i = 0; i < schedule.size(); ++i)
      if (schedule[i].band == band) on_band.push_back(i);
    if (on_band.empty()) continue;

    if (model.config().phy_policy ==
        ModelConfig::PhyPolicy::MaxPowerAdaptiveRate) {
      assign_powers_max_adaptive(model, inputs, band, std::move(on_band),
                                 schedule, surviving);
      continue;
    }

    // Deschedule the violating link and retry until feasible; each retry
    // removes one link so this terminates.
    while (!on_band.empty()) {
      std::vector<net::CoBandLink> links;
      links.reserve(on_band.size());
      for (std::size_t idx : on_band) {
        const auto& s = schedule[idx];
        links.push_back(net::CoBandLink{
            s.tx, s.rx, model.node(s.tx).energy.max_tx_power_w});
      }
      const auto pc = net::solve_min_powers(
          model.topology(), links, inputs.bandwidth_hz[band], model.radio());
      if (pc.feasible) {
        for (std::size_t k = 0; k < on_band.size(); ++k) {
          ScheduledLink s = schedule[on_band[k]];
          s.power_w = pc.powers_w[k];
          s.capacity_bps = net::nominal_capacity_bps(
              inputs.bandwidth_hz[band], model.radio().sinr_threshold);
          s.capacity_packets = std::floor(
              s.capacity_bps * model.slot_seconds() / model.packet_bits());
          surviving.push_back(s);
        }
        break;
      }
      GC_CHECK(pc.violating_link >= 0);
      on_band.erase(on_band.begin() + pc.violating_link);
    }
  }
  sched_metrics().descheduled.add(
      static_cast<double>(schedule.size() - surviving.size()));
  schedule = std::move(surviving);
}

}  // namespace gc::core
