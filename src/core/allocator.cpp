#include "core/allocator.hpp"

#include "obs/registry.hpp"

namespace gc::core {

std::vector<AdmissionDecision> allocate_resources(
    const NetworkState& state, const AllocatorParams& params,
    const SlotInputs* inputs) {
  static thread_local obs::Counter& admitted_packets =
      obs::registry().counter("admit.admitted_packets");
  static thread_local obs::Counter& throttled =
      obs::registry().counter("admit.throttled_sessions");
  const auto& model = state.model();
  const auto inactive = [&](int b) {
    return inputs != nullptr && inputs->node_is_inactive(b);
  };
  std::vector<AdmissionDecision> out(
      static_cast<std::size_t>(model.num_sessions()));
  for (int s = 0; s < model.num_sessions(); ++s) {
    int best = -1;
    for (int b = 0; b < model.num_base_stations(); ++b) {
      if (inactive(b)) continue;  // a down or sleeping BS admits nothing
      if (best < 0 || state.q(b, s) < state.q(best, s)) best = b;
    }
    out[s].source_bs = best;
    if (best < 0) {  // every BS is down: nothing can be admitted
      out[s].packets = 0.0;
      throttled.add();
      continue;
    }
    const bool admit = state.q(best, s) - params.lambda * state.V() < 0.0;
    out[s].packets = admit ? model.session(s).max_admit_packets : 0.0;
    if (admit)
      admitted_packets.add(out[s].packets);
    else
      throttled.add();
  }
  return out;
}

double psi2(const NetworkState& state, const AllocatorParams& params,
            const std::vector<AdmissionDecision>& admissions) {
  double v = 0.0;
  for (std::size_t s = 0; s < admissions.size(); ++s) {
    const auto& a = admissions[s];
    if (a.source_bs < 0 || a.packets <= 0.0) continue;
    v += (state.q(a.source_bs, static_cast<int>(s)) -
          params.lambda * state.V()) *
         a.packets;
  }
  return v;
}

}  // namespace gc::core
