#include "core/state.hpp"

#include <algorithm>
#include <cmath>

#include "queueing/queues.hpp"

namespace gc::core {

NetworkState::NetworkState(const NetworkModel& model, double V)
    : model_(&model), v_(V) {
  GC_CHECK(V >= 0.0);
  const int n = model.num_nodes();
  q_.assign(static_cast<std::size_t>(n) * model.num_sessions(), 0.0);
  gq_.assign(static_cast<std::size_t>(n) * n, 0.0);
  batteries_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    batteries_.emplace_back(model.node(i).battery);
}

double NetworkState::q(int node, int session) const {
  if (model_->session(session).destination == node) return 0.0;
  return q_[qi(node, session)];
}

double NetworkState::g_queue(int tx, int rx) const { return gq_[li(tx, rx)]; }

double NetworkState::battery_j(int node) const {
  return batteries_[node].level_j();
}

double NetworkState::z(int node) const {
  return batteries_[node].level_j() - model_->shift_j(node, v_);
}

const energy::Battery& NetworkState::battery(int node) const {
  return batteries_[node];
}

double NetworkState::charge_headroom_j(int node) const {
  return batteries_[node].charge_headroom_j();
}

double NetworkState::discharge_headroom_j(int node) const {
  return batteries_[node].discharge_headroom_j();
}

void NetworkState::advance(const SlotDecision& decision) {
  const int n = model_->num_nodes();
  const int S = model_->num_sessions();
  GC_CHECK(static_cast<int>(decision.energy.size()) == n);
  GC_CHECK(static_cast<int>(decision.admissions.size()) == S);

  // Data queues, law (15).
  std::vector<double> served(static_cast<std::size_t>(n) * S, 0.0);
  std::vector<double> relayed(static_cast<std::size_t>(n) * S, 0.0);
  for (const auto& r : decision.routes) {
    GC_CHECK(r.packets >= 0.0);
    served[qi(r.tx, r.session)] += r.packets;
    relayed[qi(r.rx, r.session)] += r.packets;
  }
  for (int s = 0; s < S; ++s) {
    const auto& adm = decision.admissions[s];
    for (int i = 0; i < n; ++i) {
      if (model_->session(s).destination == i) {
        q_[qi(i, s)] = 0.0;  // destinations keep no queue for their session
        continue;
      }
      const double admitted = (i == adm.source_bs) ? adm.packets : 0.0;
      q_[qi(i, s)] = queueing::queue_step(q_[qi(i, s)], served[qi(i, s)],
                                          relayed[qi(i, s)] + admitted);
    }
  }

  // Virtual link queues, law (28). Service is the scheduled capacity in
  // packets; arrivals are the routed packets.
  std::vector<double> link_service(static_cast<std::size_t>(n) * n, 0.0);
  std::vector<double> link_arrivals(static_cast<std::size_t>(n) * n, 0.0);
  for (const auto& sl : decision.schedule)
    link_service[li(sl.tx, sl.rx)] += sl.capacity_packets;
  for (const auto& r : decision.routes)
    link_arrivals[li(r.tx, r.rx)] += r.packets;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const int l = li(i, j);
      gq_[l] = queueing::queue_step(gq_[l], link_service[l], link_arrivals[l]);
    }

  // Batteries, law (4), with eqs. (9), (11), (12) enforced inside.
  for (int i = 0; i < n; ++i) {
    const auto& e = decision.energy[i];
    batteries_[i].apply(e.charge_total_j(), e.discharge_j);
  }

  ++slot_;
}

void NetworkState::set_q(int node, int session, double value) {
  GC_CHECK(value >= 0.0);
  q_[qi(node, session)] = value;
}

void NetworkState::set_g_queue(int tx, int rx, double value) {
  GC_CHECK(value >= 0.0 && tx != rx);
  gq_[li(tx, rx)] = value;
}

void NetworkState::set_battery_j(int node, double value) {
  energy::BatteryParams p = model_->node(node).battery;
  p.initial_level_j = value;
  batteries_[node] = energy::Battery(p);
}

double NetworkState::total_data_queue_bs() const {
  double total = 0.0;
  for (int i = 0; i < model_->num_base_stations(); ++i)
    for (int s = 0; s < model_->num_sessions(); ++s) total += q(i, s);
  return total;
}

double NetworkState::total_data_queue_users() const {
  double total = 0.0;
  for (int i = model_->num_base_stations(); i < model_->num_nodes(); ++i)
    for (int s = 0; s < model_->num_sessions(); ++s) total += q(i, s);
  return total;
}

double NetworkState::total_battery_bs_j() const {
  double total = 0.0;
  for (int i = 0; i < model_->num_base_stations(); ++i)
    total += batteries_[i].level_j();
  return total;
}

double NetworkState::total_battery_users_j() const {
  double total = 0.0;
  for (int i = model_->num_base_stations(); i < model_->num_nodes(); ++i)
    total += batteries_[i].level_j();
  return total;
}

double NetworkState::total_virtual_queue() const {
  double total = 0.0;
  for (double g : gq_) total += g;
  return total;
}

}  // namespace gc::core
