#include "core/state.hpp"

#include <algorithm>
#include <cmath>

#include "obs/registry.hpp"
#include "queueing/queues.hpp"

namespace gc::core {

namespace {

// State-sanitization observability: how many queue values were repaired
// (NaN -> 0, negative -> 0) and how much battery action was clipped to the
// headrooms, instead of aborting the run.
struct SanitizeMetrics {
  obs::Counter& queue_values =
      obs::registry().counter("state.sanitized_queue_values");
  obs::Counter& battery_j =
      obs::registry().counter("state.sanitized_battery_j");
};

SanitizeMetrics& sanitize_metrics() {
  static thread_local SanitizeMetrics m;
  return m;
}

}  // namespace

NetworkState::NetworkState(const NetworkModel& model, double V)
    : model_(&model), v_(V) {
  GC_CHECK(V >= 0.0);
  const int n = model.num_nodes();
  q_.assign(static_cast<std::size_t>(n) * model.num_sessions(), 0.0);
  gq_.assign(static_cast<std::size_t>(n) * n, 0.0);
  batteries_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    batteries_.emplace_back(model.node(i).battery);
}

double NetworkState::q(int node, int session) const {
  if (model_->session(session).destination == node) return 0.0;
  return q_[qi(node, session)];
}

double NetworkState::g_queue(int tx, int rx) const { return gq_[li(tx, rx)]; }

double NetworkState::battery_j(int node) const {
  return batteries_[node].level_j();
}

double NetworkState::z(int node) const {
  return batteries_[node].level_j() - model_->shift_j(node, v_);
}

const energy::Battery& NetworkState::battery(int node) const {
  return batteries_[node];
}

double NetworkState::charge_headroom_j(int node) const {
  return batteries_[node].charge_headroom_j();
}

double NetworkState::discharge_headroom_j(int node) const {
  return batteries_[node].discharge_headroom_j();
}

void NetworkState::advance(const SlotDecision& decision) {
  const int n = model_->num_nodes();
  const int S = model_->num_sessions();
  GC_CHECK(static_cast<int>(decision.energy.size()) == n);
  GC_CHECK(static_cast<int>(decision.admissions.size()) == S);

  // Data queues, law (15).
  std::vector<double> served(static_cast<std::size_t>(n) * S, 0.0);
  std::vector<double> relayed(static_cast<std::size_t>(n) * S, 0.0);
  for (const auto& r : decision.routes) {
    GC_CHECK(r.packets >= 0.0);
    served[qi(r.tx, r.session)] += r.packets;
    relayed[qi(r.rx, r.session)] += r.packets;
  }
  for (int s = 0; s < S; ++s) {
    const auto& adm = decision.admissions[s];
    for (int i = 0; i < n; ++i) {
      if (model_->session(s).destination == i) {
        q_[qi(i, s)] = 0.0;  // destinations keep no queue for their session
        continue;
      }
      const double admitted = (i == adm.source_bs) ? adm.packets : 0.0;
      q_[qi(i, s)] = sanitize_queue_value(queueing::queue_step(
          q_[qi(i, s)], served[qi(i, s)], relayed[qi(i, s)] + admitted));
    }
  }

  // Virtual link queues, law (28). Service is the scheduled capacity in
  // packets; arrivals are the routed packets.
  std::vector<double> link_service(static_cast<std::size_t>(n) * n, 0.0);
  std::vector<double> link_arrivals(static_cast<std::size_t>(n) * n, 0.0);
  for (const auto& sl : decision.schedule)
    link_service[li(sl.tx, sl.rx)] += sl.capacity_packets;
  for (const auto& r : decision.routes)
    link_arrivals[li(r.tx, r.rx)] += r.packets;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const int l = li(i, j);
      gq_[l] = sanitize_queue_value(
          queueing::queue_step(gq_[l], link_service[l], link_arrivals[l]));
    }

  // Batteries, law (4), with eqs. (9), (11), (12) enforced inside. When
  // sanitizing, a decision that escaped the solvers malformed (NaN, both
  // sides of (9), beyond a headroom) is clipped into legality — with the
  // repair counted — rather than aborting a multi-million-slot run.
  for (int i = 0; i < n; ++i) {
    const auto& e = decision.energy[i];
    double charge = e.charge_total_j();
    double discharge = e.discharge_j;
    if (sanitize_) {
      // Repair exactly what Battery::apply would reject, and nothing else:
      // a legal decision must pass through bit-identically so sanitized and
      // strict runs agree whenever no fault fires. Tolerances mirror
      // battery.cpp's kSlack handling.
      constexpr double kSlack = 1e-9;
      double clipped = 0.0;
      if (!std::isfinite(charge)) {
        clipped += 1.0;  // NaN carries no magnitude to count; tally 1 J
        charge = 0.0;
      }
      if (!std::isfinite(discharge)) {
        clipped += 1.0;
        discharge = 0.0;
      }
      if (charge < -kSlack) {
        clipped += -charge;
        charge = 0.0;
      }
      if (discharge < -kSlack) {
        clipped += -discharge;
        discharge = 0.0;
      }
      const double scale = std::max(
          {1.0, batteries_[i].params().capacity_j, charge, discharge});
      if (charge > kSlack * scale && discharge > kSlack * scale) {
        const double cancel = std::min(charge, discharge);  // eq. (9)
        charge -= cancel;
        discharge -= cancel;
        clipped += 2.0 * cancel;
      }
      const double c_max = batteries_[i].charge_headroom_j();
      const double d_max = batteries_[i].discharge_headroom_j();
      if (charge > c_max + kSlack * scale) {
        clipped += charge - c_max;
        charge = c_max;
      }
      if (discharge > d_max + kSlack * scale) {
        clipped += discharge - d_max;
        discharge = d_max;
      }
      if (clipped > 0.0) sanitize_metrics().battery_j.add(clipped);
    }
    batteries_[i].apply(charge, discharge);
  }

  ++slot_;
}

double NetworkState::sanitize_queue_value(double v) const {
  if (!sanitize_) return v;
  if (std::isnan(v) || v < 0.0) {
    sanitize_metrics().queue_values.add();
    return 0.0;
  }
  return v;
}

void NetworkState::set_q(int node, int session, double value) {
  GC_CHECK(value >= 0.0);
  q_[qi(node, session)] = value;
}

void NetworkState::set_g_queue(int tx, int rx, double value) {
  GC_CHECK(value >= 0.0 && tx != rx);
  gq_[li(tx, rx)] = value;
}

void NetworkState::set_battery_j(int node, double value) {
  energy::BatteryParams p = model_->node(node).battery;
  p.initial_level_j = value;
  batteries_[node] = energy::Battery(p);
}

double NetworkState::set_battery_capacity_j(int node, double capacity_j) {
  return batteries_[node].set_capacity_j(capacity_j);
}

void NetworkState::restore_battery_level_j(int node, double level_j) {
  batteries_[node].set_level_j(level_j);
}

double NetworkState::total_data_queue_bs() const {
  double total = 0.0;
  for (int i = 0; i < model_->num_base_stations(); ++i)
    for (int s = 0; s < model_->num_sessions(); ++s) total += q(i, s);
  return total;
}

double NetworkState::total_data_queue_users() const {
  double total = 0.0;
  for (int i = model_->num_base_stations(); i < model_->num_nodes(); ++i)
    for (int s = 0; s < model_->num_sessions(); ++s) total += q(i, s);
  return total;
}

double NetworkState::total_battery_bs_j() const {
  double total = 0.0;
  for (int i = 0; i < model_->num_base_stations(); ++i)
    total += batteries_[i].level_j();
  return total;
}

double NetworkState::total_battery_users_j() const {
  double total = 0.0;
  for (int i = model_->num_base_stations(); i < model_->num_nodes(); ++i)
    total += batteries_[i].level_j();
  return total;
}

double NetworkState::total_virtual_queue() const {
  double total = 0.0;
  for (double g : gq_) total += g;
  return total;
}

}  // namespace gc::core
