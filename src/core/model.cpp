#include "core/model.hpp"

#include <algorithm>
#include <cmath>

namespace gc::core {

NetworkModel::NetworkModel(net::Topology topology, net::Spectrum spectrum,
                           net::RadioParams radio,
                           std::vector<NodeParams> nodes,
                           std::vector<Session> sessions,
                           energy::QuadraticCost cost, ModelConfig config)
    : topo_(std::move(topology)),
      spectrum_(std::move(spectrum)),
      radio_(radio),
      nodes_(std::move(nodes)),
      sessions_(std::move(sessions)),
      cost_(cost),
      config_(config) {
  GC_CHECK(static_cast<int>(nodes_.size()) == topo_.num_nodes());
  GC_CHECK(spectrum_.num_nodes() == topo_.num_nodes());
  GC_CHECK(config_.slot_seconds > 0.0);
  GC_CHECK(config_.packet_bits > 0.0);
  for (const auto& n : nodes_) {
    n.energy.validate();
    n.battery.validate();
    n.grid.validate();
    GC_CHECK_MSG(n.renewable != nullptr, "every node needs a renewable model");
    GC_CHECK_MSG(n.num_radios >= 1, "every node needs at least one radio");
  }
  for (const auto& s : sessions_) {
    GC_CHECK(s.destination >= topo_.num_base_stations() &&
             s.destination < topo_.num_nodes());
    GC_CHECK(s.demand_packets >= 0.0);
    GC_CHECK(s.max_admit_packets >= 0.0);
  }

  const int n = num_nodes();

  // beta = max over links of the per-slot link service bound (Section
  // IV-A; with multiple radios a link can be served on several bands at
  // once, so the (29) constant scales accordingly).
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (i != j) beta_ = std::max(beta_, max_link_packets_all_radios(i, j));
  // A degenerate model with no usable link still needs beta > 0 for the
  // virtual-queue scaling to be well defined.
  beta_ = std::max(beta_, 1.0);

  // gamma_max over the attainable total base-station grid draw and, with a
  // time-varying tariff, over every slot's effective cost function (the
  // z-shift of Section IV-B must dominate f' always).
  for (int i = 0; i < num_base_stations(); ++i)
    max_total_grid_j_ += nodes_[i].grid.max_draw_j;
  for (double mult : config_.tariff_multipliers) {
    GC_CHECK_MSG(mult > 0.0, "tariff multipliers must be positive");
    max_tariff_ = std::max(max_tariff_, mult);
  }
  gamma_max_ = max_tariff_ * cost_.gamma_max(max_total_grid_j_);

  // B of eq. (34). l_s^max in the paper bounds the admission burst; the
  // source is always a base station, so the indicator contributes only for
  // base-station nodes.
  const int S = num_sessions();
  double b1 = 0.0;  // data-queue term
  for (int s = 0; s < S; ++s) {
    for (int i = 0; i < n; ++i) {
      // With R_i radios a node can serve/receive on up to R_i links at
      // once, so the per-slot in/out bounds scale by R_i.
      double out_max = 0.0, in_max = 0.0;
      for (int j = 0; j < n; ++j) {
        if (j == i) continue;
        out_max = std::max(out_max, max_link_packets(i, j));
        in_max = std::max(in_max, max_link_packets(j, i));
      }
      out_max *= nodes_[i].num_radios;
      in_max *= nodes_[i].num_radios;
      const double admit =
          topo_.is_base_station(i) ? sessions_[s].max_admit_packets : 0.0;
      b1 += out_max * out_max + (in_max + admit) * (in_max + admit);
    }
  }
  b1 *= 0.5;

  double b2 = 0.0;  // virtual-queue term
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const double v = beta_ * max_link_packets_all_radios(i, j);
      b2 += v * v;
    }

  double b3 = 0.0;  // energy-queue term
  for (const auto& node : nodes_)
    b3 += std::max(node.battery.max_charge_j * node.battery.max_charge_j,
                   node.battery.max_discharge_j * node.battery.max_discharge_j);
  b3 *= 0.5;

  drift_b_ = b1 + b2 + b3;
}

const net::LinkPruneMap* NetworkModel::pruned_links() const {
  if (!config_.link_prune) return nullptr;
  if (prune_ == nullptr || prune_->topology_version() != topo_.version()) {
    std::vector<double> pmax(static_cast<std::size_t>(num_nodes()), 0.0);
    for (int i = 0; i < num_nodes(); ++i)
      pmax[i] = nodes_[i].energy.max_tx_power_w;
    prune_ =
        std::make_unique<net::LinkPruneMap>(topo_, spectrum_, radio_, pmax);
  }
  return prune_.get();
}

bool NetworkModel::link_allowed(int tx, int rx) const {
  check_node(tx);
  check_node(rx);
  if (tx == rx) return false;
  if (config_.multihop) return true;
  // One-hop architecture: only the direct base-station -> destination
  // downlink. Packets sent to any other user would strand there (nobody
  // relays), so those links carry no usable traffic.
  if (!topo_.is_base_station(tx) || topo_.is_base_station(rx)) return false;
  for (const auto& s : sessions_)
    if (s.destination == rx) return true;
  return false;
}

double NetworkModel::max_bandwidth_hz(int band) const {
  const auto& sc = spectrum_.config();
  return band == 0 ? sc.cellular_bandwidth_hz : sc.random_bandwidth_hi_hz;
}

double NetworkModel::max_link_packets(int tx, int rx) const {
  if (!link_allowed(tx, rx)) return 0.0;
  double best_bps = 0.0;
  for (int m = 0; m < num_bands(); ++m)
    if (spectrum_.link_band_ok(tx, rx, m))
      best_bps = std::max(best_bps, net::nominal_capacity_bps(
                                        max_bandwidth_hz(m),
                                        radio_.sinr_threshold));
  return std::floor(best_bps * config_.slot_seconds / config_.packet_bits);
}

double NetworkModel::tariff_multiplier(int slot) const {
  GC_CHECK(slot >= 0);
  if (config_.tariff_multipliers.empty()) return 1.0;
  return config_.tariff_multipliers[static_cast<std::size_t>(slot) %
                                    config_.tariff_multipliers.size()];
}

energy::QuadraticCost NetworkModel::cost_at(int slot) const {
  const double m = tariff_multiplier(slot);
  return energy::QuadraticCost(m * cost_.a(), m * cost_.b(), m * cost_.c());
}

double NetworkModel::max_link_packets_all_radios(int tx, int rx) const {
  if (!link_allowed(tx, rx)) return 0.0;
  int common_bands = 0;
  for (int m = 0; m < num_bands(); ++m)
    if (spectrum_.link_band_ok(tx, rx, m)) ++common_bands;
  const int parallel = std::min(
      {nodes_[tx].num_radios, nodes_[rx].num_radios, common_bands});
  return parallel * max_link_packets(tx, rx);
}

SlotInputs NetworkModel::sample_inputs(int slot, Rng& rng) const {
  SlotInputs in;
  // Independent substreams per process class keep the draws identical
  // across architectures that share a seed (so Fig. 2(f) compares like for
  // like).
  Rng band_rng = rng.fork(0x1000u + static_cast<std::uint64_t>(slot));
  Rng renew_rng = rng.fork(0x2000u + static_cast<std::uint64_t>(slot));
  Rng grid_rng = rng.fork(0x3000u + static_cast<std::uint64_t>(slot));

  const auto& sc = spectrum_.config();
  in.bandwidth_hz.assign(static_cast<std::size_t>(num_bands()), 0.0);
  in.bandwidth_hz[0] = sc.cellular_bandwidth_hz;
  for (int m = 1; m < num_bands(); ++m)
    in.bandwidth_hz[m] =
        band_rng.uniform(sc.random_bandwidth_lo_hz, sc.random_bandwidth_hi_hz);

  const int n = num_nodes();
  in.renewable_j.assign(static_cast<std::size_t>(n), 0.0);
  in.grid_connected.assign(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    in.renewable_j[i] =
        config_.renewables ? nodes_[i].renewable->sample_j(slot, renew_rng) : 0.0;
    in.grid_connected[i] =
        energy::GridConnection(nodes_[i].grid).sample_connected(grid_rng) ? 1
                                                                          : 0;
  }

  if (config_.traffic != nullptr) {
    // Run-level traffic stream (position-independent fork: the same stream
    // every slot); models fork it further by (session, slot/block), so the
    // evaluation stays pure and checkpoint-resume-safe.
    const Rng traffic_rng = rng.fork(0x4000u);
    const int S = num_sessions();
    in.session_demand_packets.assign(static_cast<std::size_t>(S), 0.0);
    for (int s = 0; s < S; ++s)
      in.session_demand_packets[s] = config_.traffic->demand_packets(
          s, slot, sessions_[s].demand_packets, traffic_rng);
  }
  return in;
}

}  // namespace gc::core
