#include "core/router.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "lp/simplex.hpp"
#include "obs/registry.hpp"

namespace gc::core {

namespace {

// S3 observability: packets delivered straight from a base station vs over
// a user relay (the multi-hop payoff), and plain forwarding volume.
struct RouterMetrics {
  obs::Counter& direct = obs::registry().counter("route.delivered_direct_packets");
  obs::Counter& relayed =
      obs::registry().counter("route.delivered_relayed_packets");
  obs::Counter& forwarded = obs::registry().counter("route.forwarded_packets");
};

void note_routes(const NetworkState& state,
                 const std::vector<RouteDecision>& routes) {
  static thread_local RouterMetrics m;
  const auto& model = state.model();
  for (const auto& r : routes) {
    if (r.rx != model.session(r.session).destination)
      m.forwarded.add(r.packets);
    else if (model.topology().is_base_station(r.tx))
      m.direct.add(r.packets);
    else
      m.relayed.add(r.packets);
  }
}

double coefficient(const NetworkState& state, int i, int j, int s) {
  // -Q_i^s + Q_j^s + beta * H_ij (H already carries one factor of beta).
  return -state.q(i, s) + state.q(j, s) +
         state.model().beta() * state.h(i, j);
}

struct LinkCap {
  int tx, rx;
  double remaining;
};

}  // namespace

RoutingResult greedy_route(const NetworkState& state,
                           const std::vector<ScheduledLink>& schedule,
                           const std::vector<AdmissionDecision>& admissions,
                           const std::vector<double>* demand) {
  const auto& model = state.model();
  const int S = model.num_sessions();
  const auto demand_of = [&](int s) {
    return demand != nullptr ? (*demand)[static_cast<std::size_t>(s)]
                             : model.session(s).demand_packets;
  };
  RoutingResult result;
  result.demand_shortfall.assign(static_cast<std::size_t>(S), 0.0);

  // One capacity bucket per (tx, rx) pair; with multiple radios a link may
  // be scheduled on several bands at once, so entries are aggregated.
  std::vector<LinkCap> links;
  links.reserve(schedule.size());
  for (const auto& sl : schedule) {
    bool merged = false;
    for (auto& l : links)
      if (l.tx == sl.tx && l.rx == sl.rx) {
        l.remaining += sl.capacity_packets;
        merged = true;
        break;
      }
    if (!merged) links.push_back(LinkCap{sl.tx, sl.rx, sl.capacity_packets});
  }

  auto push_route = [&](int tx, int rx, int s, double packets) {
    if (packets <= 0.0) return;
    result.routes.push_back(RouteDecision{tx, rx, s, packets});
  };

  // Step 1: destination demand, constraint (18). Smallest coefficient
  // first; spill across incoming links until v_s is met or capacity runs
  // out.
  for (int s = 0; s < S; ++s) {
    const int dest = model.session(s).destination;
    double need = demand_of(s);
    if (need <= 0.0) continue;
    std::vector<std::size_t> incoming;
    for (std::size_t l = 0; l < links.size(); ++l)
      if (links[l].rx == dest && links[l].tx != dest) incoming.push_back(l);
    std::sort(incoming.begin(), incoming.end(),
              [&](std::size_t a, std::size_t b) {
                return coefficient(state, links[a].tx, dest, s) <
                       coefficient(state, links[b].tx, dest, s);
              });
    for (std::size_t l : incoming) {
      if (need <= 0.0) break;
      const double amount = std::min(need, links[l].remaining);
      if (amount <= 0.0) continue;
      push_route(links[l].tx, dest, s, std::floor(amount));
      links[l].remaining -= std::floor(amount);
      need -= std::floor(amount);
    }
    result.demand_shortfall[s] = need;
  }

  // Step 2: fill each link's remaining capacity with the most negative
  // coefficient session, respecting (16) (no traffic into the source BS)
  // and (17) (destinations do not forward their own session). Destination
  // deliveries are excluded — (18) is an equality already satisfied.
  for (auto& link : links) {
    if (link.remaining <= 0.0) continue;
    int best_s = -1;
    double best_coeff = 0.0;  // only strictly negative coefficients route
    for (int s = 0; s < S; ++s) {
      if (link.tx == model.session(s).destination) continue;  // (17)
      if (link.rx == model.session(s).destination) continue;  // (18) done
      if (link.rx == admissions[s].source_bs) continue;       // (16)
      const double c = coefficient(state, link.tx, link.rx, s);
      if (c < best_coeff) {
        best_coeff = c;
        best_s = s;
      }
    }
    if (best_s >= 0) {
      push_route(link.tx, link.rx, best_s, std::floor(link.remaining));
      link.remaining = 0.0;
    }
  }
  note_routes(state, result.routes);
  return result;
}

RoutingResult lp_route(const NetworkState& state,
                       const std::vector<ScheduledLink>& schedule,
                       const std::vector<AdmissionDecision>& admissions,
                       const lp::Options& lp_options,
                       lp::Workspace* workspace,
                       const std::vector<double>* demand) {
  const auto& model = state.model();
  const int S = model.num_sessions();
  const auto demand_of = [&](int s) {
    return demand != nullptr ? (*demand)[static_cast<std::size_t>(s)]
                             : model.session(s).demand_packets;
  };
  RoutingResult result;
  result.demand_shortfall.assign(static_cast<std::size_t>(S), 0.0);

  lp::Model m;
  // Variable per (scheduled link, session) not excluded by (16)/(17).
  struct Var {
    std::size_t link;
    int session;
  };
  std::vector<Var> vars;
  std::vector<std::vector<int>> link_vars(schedule.size());
  std::vector<std::vector<int>> dest_vars(static_cast<std::size_t>(S));
  for (std::size_t l = 0; l < schedule.size(); ++l) {
    for (int s = 0; s < S; ++s) {
      const int dest = model.session(s).destination;
      if (schedule[l].tx == dest) continue;                // (17)
      if (schedule[l].rx == admissions[s].source_bs) continue;  // (16)
      const double coeff =
          coefficient(state, schedule[l].tx, schedule[l].rx, s);
      const int v = m.add_variable(0.0, lp::kInf, coeff);
      vars.push_back(Var{l, s});
      link_vars[l].push_back(v);
      if (schedule[l].rx == dest) dest_vars[s].push_back(v);
    }
  }
  // (25): per-link capacity.
  for (std::size_t l = 0; l < schedule.size(); ++l) {
    const int row =
        m.add_row(lp::Sense::LessEqual, schedule[l].capacity_packets);
    for (int v : link_vars[l]) m.set_coeff(row, v, 1.0);
  }
  // (18): destination demand, as <= demand plus a delivery reward that
  // dominates every routing coefficient (the paper's equality may be
  // unsatisfiable under the realized schedule, in which case we deliver as
  // much as possible and report the shortfall).
  double dominate = 1.0;
  for (int v = 0; v < m.num_variables(); ++v)
    dominate = std::max(dominate, std::abs(m.objective_coeff(v)) + 1.0);
  for (int s = 0; s < S; ++s) {
    const double need = demand_of(s);
    if (need <= 0.0 || dest_vars[s].empty()) {
      result.demand_shortfall[s] = need;
      continue;
    }
    const int row = m.add_row(lp::Sense::LessEqual, need);
    for (int v : dest_vars[s]) m.set_coeff(row, v, 1.0);
    for (int v : dest_vars[s])
      m.set_objective_coeff(v, m.objective_coeff(v) - dominate);
  }

  lp::Workspace local_ws;
  const lp::Solution sol =
      lp::solve(m, lp_options, workspace != nullptr ? *workspace : local_ws);
  GC_CHECK_MSG(sol.status == lp::Status::Optimal,
               "S3 LP not optimal at slot " << state.slot() << ": "
                                            << lp::to_string(sol.status));
  std::vector<double> delivered(static_cast<std::size_t>(S), 0.0);
  for (std::size_t v = 0; v < vars.size(); ++v) {
    const double packets = std::floor(sol.x[v] + 1e-6);
    if (packets <= 0.0) continue;
    const auto& sl = schedule[vars[v].link];
    result.routes.push_back(
        RouteDecision{sl.tx, sl.rx, vars[v].session, packets});
    if (sl.rx == model.session(vars[v].session).destination)
      delivered[vars[v].session] += packets;
  }
  for (int s = 0; s < S; ++s)
    result.demand_shortfall[s] = std::max(demand_of(s) - delivered[s], 0.0);
  note_routes(state, result.routes);
  return result;
}

double routing_objective(const NetworkState& state,
                         const std::vector<RouteDecision>& routes) {
  double total = 0.0;
  for (const auto& r : routes)
    total += coefficient(state, r.tx, r.rx, r.session) * r.packets;
  return total;
}

}  // namespace gc::core
