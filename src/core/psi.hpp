// The drift-plus-penalty machinery of Section IV-B made inspectable:
// the Lyapunov function L(Theta), the opportunistic terms Psi1..Psi4 of
// eqs. (35)-(38) evaluated at a concrete SlotDecision, and the penalty
// V(f(P) - lambda sum_s k_s).
//
// Lemma 1 states
//   Delta(Theta(t)) + V E[f(P) - lambda sum k | Theta]
//       <= B + Psi1 + Psi2 + Psi3 + Psi4,
// and the decomposition minimizes the right-hand side term by term. These
// evaluators let tests verify the inequality numerically slot by slot
// (tests/core/psi_test.cpp) and let ablations report how much each
// subproblem contributes to the bound.
#pragma once

#include "core/allocator.hpp"
#include "core/state.hpp"
#include "core/types.hpp"

namespace gc::core {

// L(Theta(t)) = 1/2 [ sum Q^2 + sum H^2 + sum z^2 ]  (Section IV-B).
double lyapunov(const NetworkState& state);

// Psi1-hat (eq. (35)) in packet units: -beta * sum_ij H_ij * cap_packets,
// summed over the scheduled links.
double psi1_hat(const NetworkState& state,
                const std::vector<ScheduledLink>& schedule);

// Psi2-hat (eq. (36)): sum_s (Q_{s_s}^s - lambda V) k_s. (Alias of
// allocator's psi2; redeclared here for discoverability.)
double psi2_hat(const NetworkState& state, double lambda,
                const std::vector<AdmissionDecision>& admissions);

// Psi3-hat (eq. (37)): sum over routed packets of
// (-Q_i^s + Q_j^s + beta H_ij).
double psi3_hat(const NetworkState& state,
                const std::vector<RouteDecision>& routes);

// Psi4-hat (eq. (38)): sum_i z_i (c_i - d_i) + V f(P). (Alias of
// energy_manager's psi4.)
double psi4_hat(const NetworkState& state,
                const std::vector<NodeEnergyDecision>& decisions);

// The penalty term V (f(P(t)) - lambda sum_s k_s(t)).
double penalty(const NetworkState& state, double lambda,
               const SlotDecision& decision);

}  // namespace gc::core
