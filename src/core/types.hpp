// Shared value types for the per-slot optimization pipeline.
#pragma once

#include <vector>

#include "util/check.hpp"

namespace gc::core {

// A downlink Internet service session {d_s, v_s(t), s_s(t)} (Section II-A).
// The destination is fixed; the source base station s_s(t) is chosen by the
// resource-allocation subproblem each slot.
struct Session {
  int destination = -1;           // a user node
  double demand_packets = 0.0;    // v_s(t), constant-rate model
  double max_admit_packets = 0.0; // K_s^max, cap on k_s(t)
};

// Everything random that is observed at the start of a slot, plus the
// fault-injection overlay (src/fault) the simulator may have applied before
// the controller observes it. The overlay fields default to "benign": empty
// vectors mean no node is down and no link is faded, multiplier 1 means the
// tariffed cost applies unchanged.
struct SlotInputs {
  std::vector<double> bandwidth_hz;   // W_m(t), indexed by band
  std::vector<double> renewable_j;    // R_i(t) * dt, indexed by node
  std::vector<char> grid_connected;   // omega_i(t), indexed by node
  // v_s(t), indexed by session, sampled from the model's TrafficModel
  // (core/traffic.hpp). Empty under the constant-rate model, in which case
  // every consumer uses the sessions' constant demand — the pre-scenario
  // behavior, bit for bit. Read via NetworkModel::demand_packets.
  std::vector<double> session_demand_packets;

  // Fault overlay. A down node admits, forwards, transmits, receives,
  // charges and discharges nothing — its queues and battery freeze. A faded
  // link (row-major tx * n + rx) carries no traffic this slot. The cost
  // multiplier scales f(P) for the slot (grid price spike).
  std::vector<char> node_down;   // empty or indexed by node
  std::vector<char> link_faded;  // empty or num_nodes^2, row-major
  double cost_multiplier = 1.0;

  // Sleep overlay (src/policy). An asleep base station is masked out of
  // S1–S3 exactly like a down node — its data and virtual queues freeze,
  // sessions admit and route around it — but unlike a down node it still
  // PAYS for energy: its S4 demand is replaced by policy_demand_j (tier
  // sleep power plus any switching energy this slot), which it may serve
  // from the grid, renewables, or its battery, and it keeps harvesting
  // (charging) while asleep. A node that is both down and asleep behaves
  // as down: the outage zeroes the demand too.
  std::vector<char> node_asleep;        // empty or indexed by node
  std::vector<double> policy_demand_j;  // empty or indexed by node

  bool node_is_down(int node) const {
    return !node_down.empty() && node_down[node] != 0;
  }
  bool node_is_asleep(int node) const {
    return !node_asleep.empty() && node_asleep[node] != 0;
  }
  // Masked out of the combinatorial subproblems (S1–S3): down or asleep.
  bool node_is_inactive(int node) const {
    return node_is_down(node) || node_is_asleep(node);
  }
  double policy_demand(int node) const {
    return policy_demand_j.empty() ? 0.0 : policy_demand_j[node];
  }
  bool link_is_faded(int tx, int rx, int num_nodes) const {
    return !link_faded.empty() &&
           link_faded[static_cast<std::size_t>(tx) * num_nodes + rx] != 0;
  }
  bool any_node_down() const {
    for (char d : node_down)
      if (d) return true;
    return false;
  }
  bool any_node_asleep() const {
    for (char d : node_asleep)
      if (d) return true;
    return false;
  }
  bool any_node_inactive() const { return any_node_down() || any_node_asleep(); }
};

// One active alpha_ij^m(t) = 1 with its transmission power and realized
// capacity (eq. (1)).
struct ScheduledLink {
  int tx = -1;
  int rx = -1;
  int band = -1;
  double power_w = 0.0;
  double capacity_bps = 0.0;
  // floor(capacity * dt / delta): packets the link can carry this slot.
  double capacity_packets = 0.0;
};

// l_ij^s(t) > 0 entries.
struct RouteDecision {
  int tx = -1;
  int rx = -1;
  int session = -1;
  double packets = 0.0;
};

// Source selection + admission for one session (subproblem S2).
struct AdmissionDecision {
  int source_bs = -1;
  double packets = 0.0;  // k_s(t)
};

// Energy-management variables of one node (subproblem S4). All joules.
struct NodeEnergyDecision {
  double demand_j = 0.0;           // E_i(t), fixed by the schedule
  double serve_renewable_j = 0.0;  // r_i
  double serve_grid_j = 0.0;       // g_i
  double discharge_j = 0.0;        // d_i
  double charge_renewable_j = 0.0; // c_i^r
  double charge_grid_j = 0.0;      // c_i^g
  double curtailed_j = 0.0;        // renewable neither used nor stored
  double unserved_j = 0.0;         // demand shortfall (0 in normal operation)
  bool connected = false;          // omega_i(t)

  double charge_total_j() const { return charge_renewable_j + charge_grid_j; }
  double grid_draw_j() const { return serve_grid_j + charge_grid_j; }
};

// Wall-clock seconds the controller spent in each subproblem this slot
// (S1 includes power control, S4 includes the energy-demand computation).
// All zero when the library is built with GC_OBS_DISABLE.
struct SlotTimings {
  double s1_s = 0.0;
  double s2_s = 0.0;
  double s3_s = 0.0;
  double s4_s = 0.0;
  double step_s = 0.0;  // the whole LyapunovController::step call

  double subproblem_total_s() const { return s1_s + s2_s + s3_s + s4_s; }
};

// The full outcome of one slot of the online algorithm.
struct SlotDecision {
  std::vector<ScheduledLink> schedule;
  std::vector<RouteDecision> routes;
  std::vector<AdmissionDecision> admissions;  // indexed by session
  std::vector<NodeEnergyDecision> energy;     // indexed by node
  double grid_total_j = 0.0;  // P(t): base-station grid draws only
  double cost = 0.0;          // f(P(t))
  // Diagnostics: unmet destination demand per session (packets) and total
  // demand shortfall in energy (joules); both 0 in normal operation.
  std::vector<double> demand_shortfall;
  double unserved_energy_j = 0.0;
  // Observability: where this slot's wall-clock time went.
  SlotTimings timing;
  // Graceful degradation (docs/ROBUSTNESS.md): how many subproblem solvers
  // fell down the fallback ladder this slot (S1 SequentialFix -> Greedy,
  // S3 Lp -> Greedy, S4 Lp -> Price), and whether any did.
  int fallbacks = 0;
  bool degraded = false;

  double routed_packets(int tx, int rx, int session) const {
    for (const auto& r : routes)
      if (r.tx == tx && r.rx == rx && r.session == session) return r.packets;
    return 0.0;
  }
};

}  // namespace gc::core
