#include "core/psi.hpp"

#include "core/energy_manager.hpp"
#include "core/router.hpp"

namespace gc::core {

double lyapunov(const NetworkState& state) {
  const auto& model = state.model();
  double total = 0.0;
  for (int i = 0; i < model.num_nodes(); ++i) {
    for (int s = 0; s < model.num_sessions(); ++s) {
      const double q = state.q(i, s);
      total += q * q;
    }
    const double z = state.z(i);
    total += z * z;
    for (int j = 0; j < model.num_nodes(); ++j) {
      if (i == j) continue;
      const double h = state.h(i, j);
      total += h * h;
    }
  }
  return 0.5 * total;
}

double psi1_hat(const NetworkState& state,
                const std::vector<ScheduledLink>& schedule) {
  double total = 0.0;
  for (const auto& sl : schedule)
    total += state.h(sl.tx, sl.rx) * sl.capacity_packets;
  return -state.model().beta() * total;
}

double psi2_hat(const NetworkState& state, double lambda,
                const std::vector<AdmissionDecision>& admissions) {
  return psi2(state, AllocatorParams{lambda}, admissions);
}

double psi3_hat(const NetworkState& state,
                const std::vector<RouteDecision>& routes) {
  return routing_objective(state, routes);
}

double psi4_hat(const NetworkState& state,
                const std::vector<NodeEnergyDecision>& decisions) {
  return psi4(state, decisions);
}

double penalty(const NetworkState& state, double lambda,
               const SlotDecision& decision) {
  double admitted = 0.0;
  for (const auto& a : decision.admissions) admitted += a.packets;
  return state.V() * (decision.cost - lambda * admitted);
}

}  // namespace gc::core
