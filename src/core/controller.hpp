// The online finite-queue-aware energy-cost minimization algorithm
// (Section IV): each slot, observe the random state, solve the four
// subproblems S1-S4 in sequence, apply the decision, and update the queues.
//
// Theorem 3 guarantees every queue (Q, H, z) is strongly stable under this
// controller; Theorem 4 makes its time-averaged cost an upper bound on the
// offline optimum psi*_P1.
//
// The Fig. 2(f) baselines (multi-hop w/o renewables, one-hop w/ and w/o
// renewables) are the same controller run on a NetworkModel whose
// ModelConfig disables relaying and/or renewable inputs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/allocator.hpp"
#include "core/energy_manager.hpp"
#include "core/model.hpp"
#include "core/router.hpp"
#include "core/scheduler.hpp"
#include "core/state.hpp"

namespace gc::core {

struct ControllerOptions {
  AllocatorParams allocator;
  enum class Scheduler { SequentialFix, Greedy } scheduler = Scheduler::SequentialFix;
  // Psi3-aware secondary scheduling pass. Required for the system to carry
  // traffic at all (the paper's S1 alone deadlocks at cold start — see
  // scheduler.hpp); exposed so bench/ablation_fill_in can demonstrate it.
  bool fill_in = true;
  // Extension (off = the paper's algorithm): charge scheduling candidates
  // V*f'(P(t-1)) for the base-station energy they would spend, closing the
  // S1<->S4 coupling the decomposition drops.
  bool energy_aware_scheduling = false;
  // Lp solves S4 exactly (up to a fine PWL of f) like the paper's CPLEX;
  // Price is the faster closed-form decomposition, within ~2% of optimal
  // but all-or-nothing at the marginal node (see bench/ablation_energy_managers).
  enum class EnergyManager { Lp, Price } energy_manager = EnergyManager::Lp;
  enum class Router { Greedy, Lp } router = Router::Greedy;
  // Watchdog budget applied to every LP solve the subproblems issue
  // (iterations and, if max_seconds > 0, wall-clock). The defaults are the
  // solver's own generous limits; long unattended runs tighten them.
  lp::Options lp;
  // Per-solve LP introspection sink (e.g. lp::JsonlSolveLog), attached to
  // the controller's three workspaces with contexts "s1"/"s3"/"s4".
  // Observation only — never changes decisions; nullptr = off. Must
  // outlive the controller and be thread-safe when controllers share it.
  lp::SolveStatsSink* lp_stats = nullptr;
  // S4 decomposition (energy_manager.hpp; docs/ALGORITHM.md "Why the S4
  // split is exact"). Auto keeps paper-scale instances on the historical
  // joint-LP trajectory and decomposes only at or above the node threshold.
  S4Decompose s4_decompose = S4Decompose::Auto;
  int s4_decompose_min_nodes = 64;
  // Cross-slot LP warm starts (--lp-warm-slots): seed each slot's first S1
  // relaxation and the S4 LP from the previous slot's final variable
  // states. Off by default — a warm hint only moves the starting vertex,
  // but a degenerate S1 relaxation may round a different (equally optimal)
  // alpha than the cold run, so the default stays bit-identical to the
  // paper baseline. The carry is part of the checkpointed state
  // (warm_carry() / restore_warm_carry()), so resume replays exactly.
  bool warm_across_slots = false;
  // Intra-slot parallelism (--intra-slot-threads): > 1 runs S1 as one SF
  // series per interference cluster (sequential_fix_schedule_clustered)
  // and S4's per-user closed forms in chunks, on a controller-owned pool
  // with per-worker obs registries merged deterministically each slot.
  // Results are deterministic for any thread count, but the clustered S1
  // is not bit-identical to the single-threaded SF (see scheduler.hpp);
  // 0 = all hardware threads, 1 (default) = the historical serial path.
  int intra_slot_threads = 1;
  // Fallback ladder (docs/ROBUSTNESS.md): when an LP-based subproblem
  // solver fails (Infeasible / IterationLimit / TimeLimit / NumericalError,
  // surfaced as gc::CheckError), retry the slot's subproblem with the
  // cheaper closed-form solver instead of aborting the run:
  //   S1 SequentialFix -> Greedy, S3 Lp -> Greedy, S4 Lp -> Price.
  // Every drop bumps ctrl.fallback_s{1,3,4} and marks the decision
  // degraded. Off = the strict mode tests rely on (failures propagate).
  bool fallbacks = true;
};

class LyapunovController {
 public:
  LyapunovController(const NetworkModel& model, double V,
                     ControllerOptions options = {});
  ~LyapunovController();

  // The cross-slot warm-start carry (ControllerOptions::warm_across_slots):
  // the S1/S4 workspaces' recorded variable states plus the (tx, rx, band)
  // keys aligning S1's states with next slot's candidates. Serialized into
  // checkpoints (sim/checkpoint.cpp) so a resumed run feeds its first slot
  // the exact hints the uninterrupted run would have — replay stays
  // bit-identical. Empty vectors when warm starts are off or no slot has
  // run yet; restore with everything empty is a no-op cold start.
  struct WarmCarry {
    std::vector<std::uint8_t> s1_states;
    std::vector<std::uint64_t> s1_keys;
    std::vector<std::uint8_t> s4_states;
  };
  WarmCarry warm_carry() const;
  void restore_warm_carry(const WarmCarry& carry);

  const NetworkState& state() const { return state_; }
  // Mutable access for checkpoint restore and for the simulator's
  // sanitization switch; the online algorithm itself never uses it.
  NetworkState& mutable_state() { return state_; }
  double V() const { return state_.V(); }
  const ControllerOptions& options() const { return options_; }
  // P(t-1), the grid draw the energy-aware scheduling extension prices
  // against; exposed for checkpointing.
  double last_grid_j() const { return last_grid_j_; }
  void set_last_grid_j(double j) { last_grid_j_ = j; }

  // Runs one slot: solves S2 (admission), S1 (scheduling + power control),
  // S3 (routing) and S4 (energy management), advances all queue laws, and
  // returns the applied decision.
  SlotDecision step(const SlotInputs& inputs);

 private:
  const NetworkModel* model_;
  ControllerOptions options_;
  NetworkState state_;
  double last_grid_j_ = 0.0;  // P(t-1), for energy-aware scheduling
  // Reusable LP solver state, one workspace per LP-backed subproblem so
  // each solves a single model family (S1 additionally warm-starts its
  // sequential-fix series through lp_ws_s1_; see scheduler.hpp). Purely
  // solver-internal UNLESS warm_across_slots is on, in which case the
  // recorded states of s1/s4 are checkpointed via warm_carry().
  lp::Workspace lp_ws_s1_, lp_ws_s3_, lp_ws_s4_;
  // Cross-slot S1 warm keys (scheduler.hpp `warm_keys`); only maintained in
  // the serial SF path — the clustered scheduler solves through ephemeral
  // per-cluster workspaces, so there is no state to carry.
  std::vector<std::uint64_t> s1_warm_keys_;
  // Intra-slot worker pool + per-worker obs registries (nullptr when
  // intra_slot_threads <= 1). Owned here so the workers and their
  // registries live exactly as long as the controller.
  struct IntraSlotPool;
  std::unique_ptr<IntraSlotPool> pool_;
};

}  // namespace gc::core
