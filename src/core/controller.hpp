// The online finite-queue-aware energy-cost minimization algorithm
// (Section IV): each slot, observe the random state, solve the four
// subproblems S1-S4 in sequence, apply the decision, and update the queues.
//
// Theorem 3 guarantees every queue (Q, H, z) is strongly stable under this
// controller; Theorem 4 makes its time-averaged cost an upper bound on the
// offline optimum psi*_P1.
//
// The Fig. 2(f) baselines (multi-hop w/o renewables, one-hop w/ and w/o
// renewables) are the same controller run on a NetworkModel whose
// ModelConfig disables relaying and/or renewable inputs.
#pragma once

#include <memory>

#include "core/allocator.hpp"
#include "core/energy_manager.hpp"
#include "core/model.hpp"
#include "core/router.hpp"
#include "core/scheduler.hpp"
#include "core/state.hpp"

namespace gc::core {

struct ControllerOptions {
  AllocatorParams allocator;
  enum class Scheduler { SequentialFix, Greedy } scheduler = Scheduler::SequentialFix;
  // Psi3-aware secondary scheduling pass. Required for the system to carry
  // traffic at all (the paper's S1 alone deadlocks at cold start — see
  // scheduler.hpp); exposed so bench/ablation_fill_in can demonstrate it.
  bool fill_in = true;
  // Extension (off = the paper's algorithm): charge scheduling candidates
  // V*f'(P(t-1)) for the base-station energy they would spend, closing the
  // S1<->S4 coupling the decomposition drops.
  bool energy_aware_scheduling = false;
  // Lp solves S4 exactly (up to a fine PWL of f) like the paper's CPLEX;
  // Price is the faster closed-form decomposition, within ~2% of optimal
  // but all-or-nothing at the marginal node (see bench/ablation_energy_managers).
  enum class EnergyManager { Lp, Price } energy_manager = EnergyManager::Lp;
  enum class Router { Greedy, Lp } router = Router::Greedy;
  // Watchdog budget applied to every LP solve the subproblems issue
  // (iterations and, if max_seconds > 0, wall-clock). The defaults are the
  // solver's own generous limits; long unattended runs tighten them.
  lp::Options lp;
  // Per-solve LP introspection sink (e.g. lp::JsonlSolveLog), attached to
  // the controller's three workspaces with contexts "s1"/"s3"/"s4".
  // Observation only — never changes decisions; nullptr = off. Must
  // outlive the controller and be thread-safe when controllers share it.
  lp::SolveStatsSink* lp_stats = nullptr;
  // Fallback ladder (docs/ROBUSTNESS.md): when an LP-based subproblem
  // solver fails (Infeasible / IterationLimit / TimeLimit / NumericalError,
  // surfaced as gc::CheckError), retry the slot's subproblem with the
  // cheaper closed-form solver instead of aborting the run:
  //   S1 SequentialFix -> Greedy, S3 Lp -> Greedy, S4 Lp -> Price.
  // Every drop bumps ctrl.fallback_s{1,3,4} and marks the decision
  // degraded. Off = the strict mode tests rely on (failures propagate).
  bool fallbacks = true;
};

class LyapunovController {
 public:
  LyapunovController(const NetworkModel& model, double V,
                     ControllerOptions options = {});

  const NetworkState& state() const { return state_; }
  // Mutable access for checkpoint restore and for the simulator's
  // sanitization switch; the online algorithm itself never uses it.
  NetworkState& mutable_state() { return state_; }
  double V() const { return state_.V(); }
  const ControllerOptions& options() const { return options_; }
  // P(t-1), the grid draw the energy-aware scheduling extension prices
  // against; exposed for checkpointing.
  double last_grid_j() const { return last_grid_j_; }
  void set_last_grid_j(double j) { last_grid_j_ = j; }

  // Runs one slot: solves S2 (admission), S1 (scheduling + power control),
  // S3 (routing) and S4 (energy management), advances all queue laws, and
  // returns the applied decision.
  SlotDecision step(const SlotInputs& inputs);

 private:
  const NetworkModel* model_;
  ControllerOptions options_;
  NetworkState state_;
  double last_grid_j_ = 0.0;  // P(t-1), for energy-aware scheduling
  // Reusable LP solver state, one workspace per LP-backed subproblem so
  // each solves a single model family (S1 additionally warm-starts its
  // sequential-fix series through lp_ws_s1_; see scheduler.hpp). Purely
  // solver-internal: nothing here is part of the checkpointed state.
  lp::Workspace lp_ws_s1_, lp_ws_s3_, lp_ws_s4_;
};

}  // namespace gc::core
