#include "core/controller.hpp"

#include "obs/registry.hpp"
#include "obs/timer.hpp"
#include "util/thread_pool.hpp"

namespace gc::core {

// Intra-slot worker pool with per-worker obs registries, mirroring the
// sweep engine's idiom (sim/sweep.cpp): on_thread_start installs a
// worker-private registry so every instrument a cluster job touches is
// race-free; after each step the controller thread folds the workers'
// registries into its own thread-current registry in worker-index order
// (FP sums are order-sensitive) and resets them.
struct LyapunovController::IntraSlotPool {
  std::vector<std::unique_ptr<obs::Registry>> registries;
  // Declared before `pool` so the scopes outlive the joining workers
  // (on_thread_stop resets each worker's scope during pool destruction).
  std::vector<std::unique_ptr<obs::ThreadRegistryScope>> scopes;
  util::ThreadPool pool;

  explicit IntraSlotPool(int threads)
      : registries(make_registries(threads)),
        scopes(registries.size()),
        pool(pool_options(threads)) {}

  static std::vector<std::unique_ptr<obs::Registry>> make_registries(
      int threads) {
    std::vector<std::unique_ptr<obs::Registry>> out;
    const int n = util::ThreadPool::resolve_num_threads(threads);
    out.reserve(static_cast<std::size_t>(n));
    for (int w = 0; w < n; ++w)
      out.push_back(std::make_unique<obs::Registry>());
    return out;
  }

  util::ThreadPool::Options pool_options(int threads) {
    util::ThreadPool::Options o;
    o.num_threads = threads;
    o.on_thread_start = [this](int w) {
      scopes[static_cast<std::size_t>(w)] =
          std::make_unique<obs::ThreadRegistryScope>(
              registries[static_cast<std::size_t>(w)].get());
    };
    o.on_thread_stop = [this](int w) {
      scopes[static_cast<std::size_t>(w)].reset();
    };
    return o;
  }

  // Fold worker instruments into `target` deterministically, then clear
  // the workers for the next slot. The thread_local instrument handles the
  // workers cached stay valid across reset() (reset zeroes values, it does
  // not destroy instruments).
  void merge_into(obs::Registry& target) {
    for (const auto& r : registries) {
      target.merge_from(*r);
      r->reset();
    }
  }
};

namespace {

// Registry handles resolved once per thread (against the thread-current
// registry — per-worker under the parallel sweep engine); step() only
// bumps them.
struct ControllerMetrics {
  obs::Histogram& step = obs::registry().histogram("ctrl.step_seconds");
  obs::Histogram& s1 = obs::registry().histogram("ctrl.s1_sched_seconds");
  obs::Histogram& s2 = obs::registry().histogram("ctrl.s2_admit_seconds");
  obs::Histogram& s3 = obs::registry().histogram("ctrl.s3_route_seconds");
  obs::Histogram& s4 = obs::registry().histogram("ctrl.s4_energy_seconds");
  obs::Counter& slots = obs::registry().counter("ctrl.slots");
  obs::Counter& grid_j = obs::registry().counter("energy.grid_j");
  obs::Counter& renewable_j = obs::registry().counter("energy.renewable_served_j");
  obs::Counter& discharge_j = obs::registry().counter("energy.battery_discharge_j");
  obs::Counter& charge_j = obs::registry().counter("energy.battery_charge_j");
  obs::Counter& curtailed_j = obs::registry().counter("energy.curtailed_j");
  obs::Counter& unserved_j = obs::registry().counter("energy.unserved_j");
  // Fallback ladder (docs/ROBUSTNESS.md): slots where an LP-based solver
  // failed and the cheaper one took over, per subproblem, plus the total
  // count of degraded slots.
  obs::Counter& fallback_s1 = obs::registry().counter("ctrl.fallback_s1");
  obs::Counter& fallback_s3 = obs::registry().counter("ctrl.fallback_s3");
  obs::Counter& fallback_s4 = obs::registry().counter("ctrl.fallback_s4");
  obs::Counter& degraded = obs::registry().counter("ctrl.degraded_slots");
};

ControllerMetrics& metrics() {
  static thread_local ControllerMetrics m;
  return m;
}

}  // namespace

LyapunovController::LyapunovController(const NetworkModel& model, double V,
                                       ControllerOptions options)
    : model_(&model), options_(options), state_(model, V) {
  // Label each workspace with its subproblem so SolveStats consumers (the
  // --lp-log stream, tests) can split the LP workload by solve class.
  lp_ws_s1_.set_stats_context("s1");
  lp_ws_s3_.set_stats_context("s3");
  lp_ws_s4_.set_stats_context("s4");
  lp_ws_s1_.set_stats_sink(options_.lp_stats);
  lp_ws_s3_.set_stats_sink(options_.lp_stats);
  lp_ws_s4_.set_stats_sink(options_.lp_stats);
  if (options_.intra_slot_threads != 1)
    pool_ = std::make_unique<IntraSlotPool>(options_.intra_slot_threads);
}

LyapunovController::~LyapunovController() = default;

LyapunovController::WarmCarry LyapunovController::warm_carry() const {
  WarmCarry carry;
  if (!options_.warm_across_slots) return carry;
  carry.s1_states = lp_ws_s1_.export_recorded_states();
  carry.s1_keys = s1_warm_keys_;
  carry.s4_states = lp_ws_s4_.export_recorded_states();
  return carry;
}

void LyapunovController::restore_warm_carry(const WarmCarry& carry) {
  lp_ws_s1_.import_recorded_states(carry.s1_states);
  s1_warm_keys_ = carry.s1_keys;
  lp_ws_s4_.import_recorded_states(carry.s4_states);
}

SlotDecision LyapunovController::step(const SlotInputs& inputs) {
  GC_CHECK(static_cast<int>(inputs.bandwidth_hz.size()) ==
           model_->num_bands());
  GC_CHECK(static_cast<int>(inputs.renewable_j.size()) == model_->num_nodes());
  GC_CHECK(static_cast<int>(inputs.grid_connected.size()) ==
           model_->num_nodes());

  // Announce the slot before any solve so every SolveStats record the
  // sinks see this step carries the right slot stamp.
  if (options_.lp_stats != nullptr) options_.lp_stats->begin_slot(state_.slot());

  ControllerMetrics& m = metrics();
  SlotDecision decision;
  obs::ScopedTimer step_timer(m.step, &decision.timing.step_s);
  // Span dims annotate problem sizes for the profiler (obs/profile.hpp):
  // the step carries the topology size, each subproblem its own decision
  // count (links scheduled, routes, energy demands).
  obs::Span step_span("controller.step", state_.slot(), model_->num_nodes());

  // S2 — source selection + admission control.
  {
    obs::ScopedTimer t(m.s2, &decision.timing.s2_s);
    obs::Span span("controller.s2_admission", state_.slot());
    decision.admissions =
        allocate_resources(state_, options_.allocator, &inputs);
  }

  // S1 — link scheduling, then constraint (24) via minimal-power control.
  // Under the fallback ladder, a failed SequentialFix relaxation (watchdog
  // limit, infeasibility, numerical trouble) degrades to the greedy
  // scheduler for this slot instead of aborting the run.
  {
    obs::ScopedTimer t(m.s1, &decision.timing.s1_s);
    obs::Span span("controller.s1_schedule", state_.slot());
    const double energy_price =
        options_.energy_aware_scheduling
            ? state_.V() * model_->cost_at(state_.slot())
                               .scaled(inputs.cost_multiplier)
                               .derivative(last_grid_j_)
            : 0.0;
    if (options_.scheduler == ControllerOptions::Scheduler::SequentialFix) {
      // Clustered when a pool is active; otherwise the serial SF, carrying
      // the cross-slot warm keys when warm_across_slots is on.
      const auto run_sf = [&] {
        if (pool_ != nullptr)
          return sequential_fix_schedule_clustered(
              state_, inputs, pool_->pool, options_.fill_in, energy_price,
              options_.lp, options_.lp_stats);
        return sequential_fix_schedule(
            state_, inputs, options_.fill_in, energy_price, options_.lp,
            &lp_ws_s1_,
            options_.warm_across_slots ? &s1_warm_keys_ : nullptr);
      };
      if (options_.fallbacks) {
        try {
          decision.schedule = run_sf();
        } catch (const CheckError&) {
          m.fallback_s1.add();
          ++decision.fallbacks;
          decision.schedule =
              greedy_schedule(state_, inputs, options_.fill_in, energy_price);
        }
      } else {
        decision.schedule = run_sf();
      }
    } else {
      decision.schedule =
          greedy_schedule(state_, inputs, options_.fill_in, energy_price);
    }
    assign_powers(*model_, inputs, decision.schedule);
    span.set_dim(static_cast<std::int64_t>(decision.schedule.size()));
  }

  // S3 — routing over the realized capacities (ladder: Lp -> Greedy).
  {
    obs::ScopedTimer t(m.s3, &decision.timing.s3_s);
    obs::Span span("controller.s3_routing", state_.slot());
    const std::vector<double>* demand =
        inputs.session_demand_packets.empty() ? nullptr
                                              : &inputs.session_demand_packets;
    RoutingResult routing;
    if (options_.router == ControllerOptions::Router::Lp) {
      if (options_.fallbacks) {
        try {
          routing = lp_route(state_, decision.schedule, decision.admissions,
                             options_.lp, &lp_ws_s3_, demand);
        } catch (const CheckError&) {
          m.fallback_s3.add();
          ++decision.fallbacks;
          routing = greedy_route(state_, decision.schedule,
                                 decision.admissions, demand);
        }
      } else {
        routing = lp_route(state_, decision.schedule, decision.admissions,
                           options_.lp, &lp_ws_s3_, demand);
      }
    } else {
      routing = greedy_route(state_, decision.schedule, decision.admissions,
                             demand);
    }
    decision.routes = std::move(routing.routes);
    decision.demand_shortfall = std::move(routing.demand_shortfall);
    span.set_dim(static_cast<std::int64_t>(decision.routes.size()));
  }

  // S4 — energy management for the demand the schedule implies (ladder:
  // Lp -> Price). A down node demands nothing, not even its baseline draw;
  // an asleep node's demand is replaced by the policy layer's sleep power
  // (plus switching energy), which it still purchases normally; an awake
  // node with a pending switch charge (instant wake) pays it on top.
  {
    obs::ScopedTimer t(m.s4, &decision.timing.s4_s);
    obs::Span span("controller.s4_energy", state_.slot());
    std::vector<double> demands =
        compute_energy_demands(*model_, decision.schedule);
    span.set_dim(static_cast<std::int64_t>(demands.size()));
    if (inputs.any_node_inactive() || !inputs.policy_demand_j.empty())
      for (std::size_t i = 0; i < demands.size(); ++i) {
        const int node = static_cast<int>(i);
        if (inputs.node_is_down(node))
          demands[i] = 0.0;  // an outage silences even sleep power
        else if (inputs.node_is_asleep(node))
          demands[i] = inputs.policy_demand(node);
        else
          demands[i] += inputs.policy_demand(node);
      }
    EnergyResult energy;
    EnergyLpOptions eopt;
    eopt.decompose = options_.s4_decompose;
    eopt.decompose_min_nodes = options_.s4_decompose_min_nodes;
    eopt.warm_across_slots = options_.warm_across_slots;
    eopt.pool = pool_ != nullptr ? &pool_->pool : nullptr;
    if (options_.energy_manager == ControllerOptions::EnergyManager::Lp) {
      if (options_.fallbacks) {
        try {
          energy = lp_energy_manage(state_, inputs, demands, eopt,
                                    options_.lp, &lp_ws_s4_);
        } catch (const CheckError&) {
          m.fallback_s4.add();
          ++decision.fallbacks;
          energy = price_energy_manage(state_, inputs, demands);
        }
      } else {
        energy = lp_energy_manage(state_, inputs, demands, eopt, options_.lp,
                                  &lp_ws_s4_);
      }
    } else {
      energy = price_energy_manage(state_, inputs, demands);
    }
    decision.energy = std::move(energy.decisions);
    decision.grid_total_j = energy.grid_total_j;
    decision.cost = energy.cost;
    decision.unserved_energy_j = energy.unserved_total_j;
    last_grid_j_ = energy.grid_total_j;
  }

  // Fold anything the intra-slot workers recorded (sched.* / lp.* from
  // cluster jobs and S4 user chunks) into this thread's registry, in
  // worker-index order, so snapshots and sweeps see one coherent registry
  // per controller thread at any intra-slot thread count.
  if (pool_ != nullptr) pool_->merge_into(obs::registry());

  decision.degraded = decision.fallbacks > 0;
  if (decision.degraded) m.degraded.add();

  m.slots.add();
  m.grid_j.add(decision.grid_total_j);
  m.unserved_j.add(decision.unserved_energy_j);
  for (const auto& e : decision.energy) {
    m.renewable_j.add(e.serve_renewable_j);
    m.discharge_j.add(e.discharge_j);
    m.charge_j.add(e.charge_total_j());
    m.curtailed_j.add(e.curtailed_j);
  }

  state_.advance(decision);
  return decision;
}

}  // namespace gc::core
