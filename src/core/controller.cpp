#include "core/controller.hpp"

namespace gc::core {

LyapunovController::LyapunovController(const NetworkModel& model, double V,
                                       ControllerOptions options)
    : model_(&model), options_(options), state_(model, V) {}

SlotDecision LyapunovController::step(const SlotInputs& inputs) {
  GC_CHECK(static_cast<int>(inputs.bandwidth_hz.size()) ==
           model_->num_bands());
  GC_CHECK(static_cast<int>(inputs.renewable_j.size()) == model_->num_nodes());
  GC_CHECK(static_cast<int>(inputs.grid_connected.size()) ==
           model_->num_nodes());

  SlotDecision decision;

  // S2 — source selection + admission control.
  decision.admissions = allocate_resources(state_, options_.allocator);

  // S1 — link scheduling, then constraint (24) via minimal-power control.
  const double energy_price =
      options_.energy_aware_scheduling
          ? state_.V() *
                model_->cost_at(state_.slot()).derivative(last_grid_j_)
          : 0.0;
  decision.schedule =
      options_.scheduler == ControllerOptions::Scheduler::SequentialFix
          ? sequential_fix_schedule(state_, inputs, options_.fill_in,
                                    energy_price)
          : greedy_schedule(state_, inputs, options_.fill_in, energy_price);
  assign_powers(*model_, inputs, decision.schedule);

  // S3 — routing over the realized capacities.
  RoutingResult routing =
      options_.router == ControllerOptions::Router::Greedy
          ? greedy_route(state_, decision.schedule, decision.admissions)
          : lp_route(state_, decision.schedule, decision.admissions);
  decision.routes = std::move(routing.routes);
  decision.demand_shortfall = std::move(routing.demand_shortfall);

  // S4 — energy management for the demand the schedule implies.
  const std::vector<double> demands =
      compute_energy_demands(*model_, decision.schedule);
  EnergyResult energy =
      options_.energy_manager == ControllerOptions::EnergyManager::Price
          ? price_energy_manage(state_, inputs, demands)
          : lp_energy_manage(state_, inputs, demands);
  decision.energy = std::move(energy.decisions);
  decision.grid_total_j = energy.grid_total_j;
  decision.cost = energy.cost;
  decision.unserved_energy_j = energy.unserved_total_j;
  last_grid_j_ = energy.grid_total_j;

  state_.advance(decision);
  return decision;
}

}  // namespace gc::core
