// Lower bound on psi*_P1 (Theorem 5): run the *relaxed* online problem
// P3-bar — the per-slot drift-plus-penalty minimization with the integrality
// of alpha and l dropped — to optimality each slot, time-average its energy
// cost, and subtract the B/V gap of Lemma 2.
//
// Relaxations applied (each only enlarges the feasible set, so the bound
// stays a bound; see DESIGN.md):
//  * alpha in [0,1], aggregated per link at the best common band's capacity
//    (any binary multi-band choice maps into this set with equal-or-higher
//    objective);
//  * cross-link interference (24) dropped, and with it all of E_TX (both
//    transmit and receive energy are non-negative, so removing them from
//    the demand can only lower the optimum);
//  * source selection (19) relaxed to per-base-station admissions summing
//    to at most K_s^max, which subsumes "one source at K_s^max";
//  * destination demand (18) dropped (delivery capped by link capacity
//    only);
//  * charge-XOR-discharge (9) dropped (LP);
//  * f(P) under-approximated by tangent lines (lp/pwl.hpp); lower_bound()
//    additionally subtracts the worst tangent gap so evaluating the
//    PWL-optimal point at the true f cannot push the bound up.
//
// These relaxations make the per-slot problem decompose exactly into a
// fractional-matching LP over links (the routing gain of a link is linear
// in its own alpha once each link gives all capacity to its best session),
// a closed-form admission rule, and the S4 energy LP — about 300x faster
// than the monolithic LP while remaining a per-slot optimum of the relaxed
// problem.
//
// The relaxed system evolves its own fractional queues by the same laws
// (15)/(28)/(4), so the reported average is a genuine sample-path average
// of the relaxed policy, mirroring how the paper's Fig. 2(a) lower curve is
// produced.
#pragma once

#include <vector>

#include "core/model.hpp"
#include "core/types.hpp"
#include "util/stats.hpp"

namespace gc::core {

class LowerBoundSolver {
 public:
  LowerBoundSolver(const NetworkModel& model, double V, double lambda,
                   int pwl_segments = 16);

  // Solves the slot's relaxed LP, advances the fractional queues, and
  // returns f(P(t)).
  double step(const SlotInputs& inputs);

  int slots() const { return slot_; }
  double average_cost() const { return cost_avg_.average(); }
  // psi*_P3bar - B/V, the Theorem 5 lower bound estimate.
  double lower_bound() const;

  // Introspection for tests.
  double q(int node, int session) const {
    return q_[static_cast<std::size_t>(node) * model_->num_sessions() + session];
  }
  double g_queue(int tx, int rx) const {
    return g_[static_cast<std::size_t>(tx) * model_->num_nodes() + rx];
  }
  double battery_j(int node) const { return x_[node]; }

 private:
  const NetworkModel* model_;
  double v_;
  double lambda_;
  int pwl_segments_;
  int slot_ = 0;
  std::vector<double> q_;  // N x S fractional data queues
  std::vector<double> g_;  // N x N fractional virtual queues
  std::vector<double> x_;  // battery levels
  TimeAverage cost_avg_;
};

}  // namespace gc::core
