// Subproblem S2 — resource allocation (Section IV-C2).
//
// Minimizes Psi2 = sum_s sum_{i in B} (Q_i^s - lambda V) k_s 1{i = s_s(t)}
// subject to (19) (exactly one source base station per session):
//   * the source base station is the one with the smallest backlog Q_i^s
//     (ties broken by lowest index, which is a deterministic stand-in for
//     the paper's random tie-break);
//   * k_s = K_s^max if Q_{s_s}^s - lambda*V < 0, else 0.
#pragma once

#include <vector>

#include "core/state.hpp"
#include "core/types.hpp"

namespace gc::core {

struct AllocatorParams {
  double lambda = 1.0;  // the operator-chosen admission reward coefficient
};

// `inputs` (optional) carries the fault overlay: a down base station is
// never chosen as a session's source. When every base station is down the
// session gets source_bs = -1 and admits nothing that slot.
std::vector<AdmissionDecision> allocate_resources(const NetworkState& state,
                                                  const AllocatorParams& params,
                                                  const SlotInputs* inputs = nullptr);

// The Psi2 value (eq. (36)) of a given admission vector, for tests and the
// drift accounting.
double psi2(const NetworkState& state, const AllocatorParams& params,
            const std::vector<AdmissionDecision>& admissions);

}  // namespace gc::core
