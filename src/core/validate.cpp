#include "core/validate.hpp"

#include <cmath>
#include <map>
#include <sstream>

#include "core/energy_manager.hpp"
#include "net/capacity.hpp"

namespace gc::core {

std::vector<std::string> validate_decision(const NetworkState& pre_state,
                                           const SlotInputs& inputs,
                                           const SlotDecision& decision,
                                           const ValidateOptions& options) {
  const auto& model = pre_state.model();
  const int n = model.num_nodes();
  const int S = model.num_sessions();
  const double tol = options.tolerance;
  std::vector<std::string> out;
  auto fail = [&](const std::string& msg) { out.push_back(msg); };
  auto str = [](auto&&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    return os.str();
  };

  // ---- (22) radio budget per node, (20)/(21) one activity per
  // (node, band); band availability; architecture.
  std::vector<int> activity(static_cast<std::size_t>(n), 0);
  std::vector<int> band_activity(
      static_cast<std::size_t>(n) * model.num_bands(), 0);
  for (const auto& sl : decision.schedule) {
    if (sl.tx < 0 || sl.tx >= n || sl.rx < 0 || sl.rx >= n || sl.tx == sl.rx)
      fail(str("schedule: bad endpoints ", sl.tx, "->", sl.rx));
    else {
      ++activity[sl.tx];
      ++activity[sl.rx];
      ++band_activity[static_cast<std::size_t>(sl.tx) * model.num_bands() +
                      sl.band];
      ++band_activity[static_cast<std::size_t>(sl.rx) * model.num_bands() +
                      sl.band];
      if (!model.link_allowed(sl.tx, sl.rx))
        fail(str("architecture: link ", sl.tx, "->", sl.rx, " not allowed"));
      if (!model.spectrum().link_band_ok(sl.tx, sl.rx, sl.band))
        fail(str("band ", sl.band, " not in M_", sl.tx, " ∩ M_", sl.rx));
    }
    if (sl.power_w < -tol ||
        sl.power_w > model.node(sl.tx).energy.max_tx_power_w + tol)
      fail(str("power out of range on ", sl.tx, "->", sl.rx, ": ", sl.power_w));
  }
  for (int i = 0; i < n; ++i) {
    if (activity[i] > model.num_radios(i))
      fail(str("(22) violated: node ", i, " active ", activity[i],
               " times with ", model.num_radios(i), " radio(s)"));
    for (int m = 0; m < model.num_bands(); ++m)
      if (band_activity[static_cast<std::size_t>(i) * model.num_bands() + m] >
          1)
        fail(str("(20)/(21) violated: node ", i, " has multiple activities ",
                 "on band ", m));
  }

  // ---- (24): SINR >= Gamma per scheduled link, with co-band interference.
  for (int band = 0; band < model.num_bands(); ++band) {
    std::vector<net::Transmission> txs;
    for (const auto& sl : decision.schedule)
      if (sl.band == band)
        txs.push_back(net::Transmission{sl.tx, sl.rx, sl.power_w});
    for (std::size_t k = 0; k < txs.size(); ++k) {
      const double s = net::sinr(model.topology(), txs, k,
                                 inputs.bandwidth_hz[band], model.radio());
      if (s < model.radio().sinr_threshold * (1.0 - 1e-6))
        fail(str("(24) violated: SINR ", s, " on ", txs[k].tx, "->", txs[k].rx,
                 " band ", band));
    }
  }

  // ---- (25): routed packets within scheduled capacity, per link.
  std::map<std::pair<int, int>, double> link_cap, link_load;
  for (const auto& sl : decision.schedule)
    link_cap[{sl.tx, sl.rx}] += sl.capacity_packets;
  for (const auto& r : decision.routes) {
    if (r.packets < -tol) fail("negative route packets");
    link_load[{r.tx, r.rx}] += r.packets;
  }
  for (const auto& [link, load] : link_load) {
    const auto it = link_cap.find(link);
    const double cap = it == link_cap.end() ? 0.0 : it->second;
    if (load > cap + tol)
      fail(str("(25) violated: load ", load, " > capacity ", cap, " on ",
               link.first, "->", link.second));
  }

  // ---- (16)-(19): routing structure.
  if (static_cast<int>(decision.admissions.size()) != S)
    fail("admissions arity mismatch");
  for (int s = 0; s < S && s < static_cast<int>(decision.admissions.size());
       ++s) {
    const auto& adm = decision.admissions[s];
    if (adm.packets > 0.0 &&
        (adm.source_bs < 0 || adm.source_bs >= model.num_base_stations()))
      fail(str("(19) violated: session ", s, " has no valid source BS"));
    if (adm.packets < -tol ||
        adm.packets > model.session(s).max_admit_packets + tol)
      fail(str("admission k_", s, " out of [0, K_max]: ", adm.packets));
    const int dest = model.session(s).destination;
    double into_source = 0.0, out_of_dest = 0.0, into_dest = 0.0;
    for (const auto& r : decision.routes) {
      if (r.session != s) continue;
      if (r.rx == adm.source_bs) into_source += r.packets;
      if (r.tx == dest) out_of_dest += r.packets;
      if (r.rx == dest) into_dest += r.packets;
    }
    if (into_source > tol)
      fail(str("(16) violated: ", into_source, " packets into source of ", s));
    if (out_of_dest > tol)
      fail(str("(17) violated: ", out_of_dest, " packets out of dest of ", s));
    const double shortfall =
        s < static_cast<int>(decision.demand_shortfall.size())
            ? decision.demand_shortfall[s]
            : 0.0;
    if (std::abs(into_dest + shortfall - model.demand_packets(s, inputs)) >
        tol)
      fail(str("(18) violated: session ", s, " delivered ", into_dest,
               " + shortfall ", shortfall, " != demand ",
               model.demand_packets(s, inputs)));
    if (options.require_demand_met && shortfall > tol)
      fail(str("(18) shortfall ", shortfall, " for session ", s));
  }

  // ---- (9)-(14): energy management.
  if (static_cast<int>(decision.energy.size()) != n) {
    fail("energy arity mismatch");
    return out;
  }
  std::vector<double> demands =
      compute_energy_demands(model, decision.schedule);
  // A down node (fault overlay) consumes nothing — not even its baseline
  // draw — and must not act at all this slot. A sleeping node (policy
  // overlay) consumes exactly its sleep power plus any switching charge;
  // an awake node pays any switching charge on top of its schedule draw.
  for (int i = 0; i < n; ++i) {
    if (inputs.node_is_down(i))
      demands[i] = 0.0;
    else if (inputs.node_is_asleep(i))
      demands[i] = inputs.policy_demand(i);
    else
      demands[i] += inputs.policy_demand(i);
  }
  double p_total = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto& e = decision.energy[i];
    const bool connected = inputs.grid_connected[i] != 0;
    if (inputs.node_is_down(i) &&
        (e.grid_draw_j() > tol || e.charge_total_j() > tol ||
         e.discharge_j > tol || e.serve_renewable_j > tol))
      fail(str("down node ", i, " took energy action"));
    if (e.connected != connected)
      fail(str("omega mismatch at node ", i));
    for (double v : {e.serve_renewable_j, e.serve_grid_j, e.discharge_j,
                     e.charge_renewable_j, e.charge_grid_j, e.curtailed_j,
                     e.unserved_j})
      if (v < -tol) fail(str("negative energy variable at node ", i));
    // (9): charge XOR discharge.
    if (e.charge_total_j() > tol && e.discharge_j > tol)
      fail(str("(9) violated at node ", i, ": charge ", e.charge_total_j(),
               " and discharge ", e.discharge_j));
    // (11)/(12): headrooms against the pre-decision battery level.
    if (e.charge_total_j() > pre_state.charge_headroom_j(i) + tol)
      fail(str("(11) violated at node ", i));
    if (e.discharge_j > pre_state.discharge_headroom_j(i) + tol)
      fail(str("(12) violated at node ", i));
    // (14): grid draw within p_max, zero when disconnected.
    const double draw = e.grid_draw_j();
    if (!connected && draw > tol)
      fail(str("grid draw while disconnected at node ", i));
    if (draw > model.node(i).grid.max_draw_j + tol)
      fail(str("(14) violated at node ", i, ": draw ", draw));
    // Renewable split (relaxed eq. (3)): r + c_r + curtail = R.
    if (std::abs(e.serve_renewable_j + e.charge_renewable_j + e.curtailed_j -
                 inputs.renewable_j[i]) > tol)
      fail(str("renewable split broken at node ", i));
    // Demand balance: E = g + r + d (+ unserved slack).
    if (std::abs(e.serve_grid_j + e.serve_renewable_j + e.discharge_j +
                 e.unserved_j - demands[i]) > tol)
      fail(str("demand balance broken at node ", i, ": E=", demands[i]));
    if (options.require_energy_served && e.unserved_j > tol)
      fail(str("unserved energy ", e.unserved_j, " at node ", i));
    if (std::abs(e.demand_j - demands[i]) > tol)
      fail(str("recorded demand mismatch at node ", i));
    if (model.topology().is_base_station(i)) p_total += draw;
  }
  if (std::abs(p_total - decision.grid_total_j) > tol)
    fail(str("P(t) mismatch: ", p_total, " vs ", decision.grid_total_j));
  // The recorded cost is against the slot's effective tariff: the base
  // tariff scaled by the fault overlay's price-spike multiplier.
  if (std::abs(model.cost_at(pre_state.slot())
                   .scaled(inputs.cost_multiplier)
                   .value(p_total) -
               decision.cost) > tol * (1.0 + decision.cost))
    fail("cost f(P) mismatch");

  // Down or sleeping nodes must be absent from the schedule, the routes,
  // and the admission sources.
  if (inputs.any_node_inactive()) {
    for (const auto& sl : decision.schedule)
      if (inputs.node_is_inactive(sl.tx) || inputs.node_is_inactive(sl.rx))
        fail(str("inactive node scheduled on ", sl.tx, "->", sl.rx));
    for (const auto& r : decision.routes)
      if (inputs.node_is_inactive(r.tx) || inputs.node_is_inactive(r.rx))
        fail(str("inactive node routed on ", r.tx, "->", r.rx));
    for (std::size_t s = 0; s < decision.admissions.size(); ++s) {
      const auto& adm = decision.admissions[s];
      if (adm.packets > tol && adm.source_bs >= 0 &&
          inputs.node_is_inactive(adm.source_bs))
        fail(str("session ", s, " admitted at inactive BS ", adm.source_bs));
    }
  }

  return out;
}

}  // namespace gc::core
