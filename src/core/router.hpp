// Subproblem S3 — routing (Section IV-C3).
//
// Minimizes sum_{s,i,j} (-Q_i^s + Q_j^s + beta*H_ij) * l_ij^s subject to the
// routing structure (16)-(18) and the link-capacity constraint (25), with
// the schedule (and hence each link's packet capacity) fixed by S1.
//
// The paper's greedy rule is exact per link: first satisfy each session's
// destination demand v_s on the incoming link with the smallest coefficient
// (eq. (18)), then give each link's remaining capacity to the session with
// the most negative coefficient (or nothing if all are non-negative).
// Deviation from the paper, documented in DESIGN.md: the paper sets the
// destination variable to v_s even if the chosen link was not scheduled; we
// cap assignments by scheduled capacity (spilling to the next-best incoming
// link) and report any remaining shortfall instead of violating (25).
#pragma once

#include <vector>

#include "core/state.hpp"
#include "core/types.hpp"
#include "lp/simplex.hpp"

namespace gc::core {

struct RoutingResult {
  std::vector<RouteDecision> routes;
  // Unmet destination demand per session (packets); 0 when (18) was met.
  std::vector<double> demand_shortfall;
};

// `demand` (optional) carries the slot's sampled v_s(t) when the model has
// a time-varying TrafficModel (SlotInputs::session_demand_packets); null
// falls back to the sessions' constant demand.
RoutingResult greedy_route(const NetworkState& state,
                           const std::vector<ScheduledLink>& schedule,
                           const std::vector<AdmissionDecision>& admissions,
                           const std::vector<double>* demand = nullptr);

// Exact LP solution of S3 (continuous relaxation; the constraint structure
// is integral in practice). Reference implementation for tests/ablation.
// Both routers only touch scheduled links, so the fault overlay needs no
// handling here: S1 already withheld down/faded elements. `lp_options`
// bounds the solve (watchdog); a non-Optimal status throws gc::CheckError
// naming the simplex status and the slot, which the controller's fallback
// ladder catches (Lp -> Greedy). `workspace` (optional) reuses solver
// buffers across slots; no warm-start hint is ever set, so results are
// identical with or without one.
RoutingResult lp_route(const NetworkState& state,
                       const std::vector<ScheduledLink>& schedule,
                       const std::vector<AdmissionDecision>& admissions,
                       const lp::Options& lp_options = {},
                       lp::Workspace* workspace = nullptr,
                       const std::vector<double>* demand = nullptr);

// Objective value of S3 for a given routing.
double routing_objective(const NetworkState& state,
                         const std::vector<RouteDecision>& routes);

}  // namespace gc::core
