// NetworkState: all time-varying state the online algorithm conditions on —
// data queues Q_i^s, virtual link queues G_ij (H_ij = beta G_ij), and the
// batteries x_i with their shifted images z_i — plus the queue-law updates
// of eqs. (15), (28)/(30) and (4)/(31).
#pragma once

#include <vector>

#include "core/model.hpp"
#include "core/types.hpp"
#include "energy/battery.hpp"

namespace gc::core {

class NetworkState {
 public:
  // V is the drift-plus-penalty weight; it fixes the z_i shift.
  NetworkState(const NetworkModel& model, double V);

  const NetworkModel& model() const { return *model_; }
  double V() const { return v_; }
  int slot() const { return slot_; }

  // Q_i^s(t); identically 0 at the session's destination (the paper's
  // destinations pass data straight up the stack).
  double q(int node, int session) const;
  // G_ij(t) (packets) and H_ij(t) = beta * G_ij(t).
  double g_queue(int tx, int rx) const;
  double h(int tx, int rx) const { return model_->beta() * g_queue(tx, rx); }
  // Battery level x_i(t) and shifted level z_i(t) = x_i - V*gamma_max - d_max.
  double battery_j(int node) const;
  double z(int node) const;
  const energy::Battery& battery(int node) const;

  // Headroom helpers the energy manager needs (eqs. (11), (12)).
  double charge_headroom_j(int node) const;
  double discharge_headroom_j(int node) const;

  // Applies one slot's decision: queue laws (15) and (28), battery law (4).
  void advance(const SlotDecision& decision);

  // Graceful degradation (docs/ROBUSTNESS.md): when enabled, advance()
  // clamps NaN / negative queue values to 0 and clips battery actions to
  // their headrooms — counting every repair in the obs registry
  // (state.sanitized_*) — instead of letting GC_CHECK abort the run.
  // Off by default; the controller switches it on for non-validate runs.
  void set_sanitize(bool on) { sanitize_ = on; }
  bool sanitize() const { return sanitize_; }

  // Direct state injection for tests and what-if analyses; not used by the
  // online algorithm itself.
  void set_q(int node, int session, double value);
  void set_g_queue(int tx, int rx, double value);
  void set_battery_j(int node, double value);
  // Battery capacity fade (fault injection): shrinks node i's battery to
  // `capacity_j`, rescaling per-slot limits so eq. (13) keeps holding.
  // Returns the joules the stored level lost to the clamp.
  double set_battery_capacity_j(int node, double capacity_j);
  // Checkpoint support: reinstate the stored level exactly without
  // resetting a faded capacity (unlike set_battery_j, which rebuilds the
  // battery from the model's pristine parameters).
  void restore_battery_level_j(int node, double level_j);
  double battery_capacity_j(int node) const {
    return batteries_[node].params().capacity_j;
  }
  // Pins the slot index (which keys time-varying tariffs); used by the
  // lower-bound solver's scratch state and by tests.
  void set_slot(int slot) {
    GC_CHECK(slot >= 0);
    slot_ = slot;
  }

  // Aggregates for the Fig. 2 panels.
  double total_data_queue_bs() const;
  double total_data_queue_users() const;
  double total_battery_bs_j() const;
  double total_battery_users_j() const;
  double total_virtual_queue() const;

 private:
  int qi(int node, int session) const {
    return node * model_->num_sessions() + session;
  }
  int li(int tx, int rx) const { return tx * model_->num_nodes() + rx; }

  // Clamps NaN / negative queue values when sanitizing (counted in the obs
  // registry); returns the value unchanged otherwise.
  double sanitize_queue_value(double v) const;

  const NetworkModel* model_;
  double v_;
  int slot_ = 0;
  bool sanitize_ = false;
  std::vector<double> q_;        // N x S
  std::vector<double> gq_;       // N x N virtual queues
  std::vector<energy::Battery> batteries_;
};

}  // namespace gc::core
