// Time-varying session demand v_s(t) (Section II-A models it as a random
// process; the seed reproduction pinned it constant).
//
// A TrafficModel maps (session, slot, base demand) to the slot's offered
// demand in packets. Implementations must be *pure per-slot evaluations*:
// the result may depend only on the arguments and on forks of the passed
// run-level Rng (it arrives const, so models can only fork it — typically
// by (session, slot) or (session, block) tags), never on hidden history.
// That is what keeps runs bit-reproducible at any thread count and lets a
// checkpoint resume at slot t without replaying slots [0, t).
//
// Models are attached via ModelConfig::traffic; when absent, SlotInputs
// carries no demand vector and every consumer falls back to the sessions'
// constant demand, bit-identically to the pre-scenario code path.
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace gc::core {

class TrafficModel {
 public:
  virtual ~TrafficModel() = default;
  // Offered demand v_s(t) in whole packets. `base_packets` is the session's
  // constant-rate demand; `rng` is the run-level traffic stream (fork it,
  // do not advance it).
  virtual double demand_packets(int session, int slot, double base_packets,
                                const Rng& rng) const = 0;
  // Upper bound on demand_packets / base_packets over all slots; bounds the
  // admission burst the same way K_s^max does.
  virtual double max_factor() const = 0;
};

// Diurnal sinusoid: base * (1 + amplitude * sin(...)), peaking at
// peak_phase (fraction of the day, 0.5 = midday for phase-0 mornings).
class DiurnalTraffic final : public TrafficModel {
 public:
  DiurnalTraffic(int slots_per_day, double amplitude, double peak_phase)
      : slots_per_day_(slots_per_day),
        amplitude_(amplitude),
        peak_phase_(peak_phase) {
    GC_CHECK(slots_per_day >= 2);
    GC_CHECK(amplitude >= 0.0 && amplitude <= 1.0);
    GC_CHECK(peak_phase >= 0.0 && peak_phase <= 1.0);
  }
  double demand_packets(int /*session*/, int slot, double base_packets,
                        const Rng& /*rng*/) const override {
    const double phase =
        static_cast<double>(slot % slots_per_day_) / slots_per_day_;
    const double wave =
        std::sin(2.0 * M_PI * (phase - peak_phase_) + 0.5 * M_PI);
    return std::floor(std::max(0.0, base_packets * (1.0 + amplitude_ * wave)));
  }
  double max_factor() const override { return 1.0 + amplitude_; }

 private:
  int slots_per_day_;
  double amplitude_;
  double peak_phase_;
};

// Two-state bursty (MMPP-style) demand: each session follows an on/off
// Markov chain scaling its base demand by on_mult / off_mult. To keep the
// per-slot evaluation pure (checkpoint-safe, O(block) not O(t)), time is
// cut into regeneration blocks of `block_slots`: the chain starts each
// block from its stationary distribution (seeded by the block index and
// session) and evolves deterministically within the block. Correlations
// therefore span up to block_slots slots; across blocks draws are
// independent.
class BurstyTraffic final : public TrafficModel {
 public:
  BurstyTraffic(double on_mult, double off_mult, double p_on_off,
                double p_off_on, int block_slots)
      : on_mult_(on_mult),
        off_mult_(off_mult),
        p_on_off_(p_on_off),
        p_off_on_(p_off_on),
        block_slots_(block_slots) {
    GC_CHECK(on_mult >= 0.0 && off_mult >= 0.0);
    GC_CHECK(p_on_off > 0.0 && p_on_off <= 1.0);
    GC_CHECK(p_off_on > 0.0 && p_off_on <= 1.0);
    GC_CHECK(block_slots >= 1);
  }
  double demand_packets(int session, int slot, double base_packets,
                        const Rng& rng) const override {
    const int block = slot / block_slots_;
    Rng chain = rng.fork(0x5000u +
                         (static_cast<std::uint64_t>(session) << 32) +
                         static_cast<std::uint64_t>(block));
    const double stationary_on = p_off_on_ / (p_on_off_ + p_off_on_);
    bool on = chain.bernoulli(stationary_on);
    const int steps = slot % block_slots_;
    for (int k = 0; k < steps; ++k)
      on = on ? !chain.bernoulli(p_on_off_) : chain.bernoulli(p_off_on_);
    return std::floor(
        std::max(0.0, base_packets * (on ? on_mult_ : off_mult_)));
  }
  double max_factor() const override { return std::max(on_mult_, off_mult_); }

 private:
  double on_mult_, off_mult_;
  double p_on_off_, p_off_on_;
  int block_slots_;
};

// Flash crowd: demand multiplied by `multiplier` during
// [start_slot, start_slot + duration_slots); base everywhere else.
class FlashCrowdTraffic final : public TrafficModel {
 public:
  FlashCrowdTraffic(int start_slot, int duration_slots, double multiplier)
      : start_(start_slot), duration_(duration_slots), mult_(multiplier) {
    GC_CHECK(start_slot >= 0);
    GC_CHECK(duration_slots >= 1);
    GC_CHECK(multiplier >= 0.0);
  }
  double demand_packets(int /*session*/, int slot, double base_packets,
                        const Rng& /*rng*/) const override {
    const bool spiking = slot >= start_ && slot < start_ + duration_;
    return std::floor(
        std::max(0.0, base_packets * (spiking ? mult_ : 1.0)));
  }
  double max_factor() const override { return std::max(1.0, mult_); }

 private:
  int start_, duration_;
  double mult_;
};

}  // namespace gc::core
