// Constraint checker: verifies that a SlotDecision satisfies every
// constraint of problem P1 — (9)-(14) energy, (16)-(19) routing, (22)
// single-radio, (24) SINR, (25) capacity — against the state *before* the
// decision was applied.
//
// Returns a list of human-readable violations (empty = clean). Integration
// tests run the controller for many slots and assert emptiness throughout;
// the simulator can run it in a debug mode.
#pragma once

#include <string>
#include <vector>

#include "core/state.hpp"
#include "core/types.hpp"

namespace gc::core {

struct ValidateOptions {
  // Demand (18) may be unmeetable under the realized schedule; the decision
  // carries the shortfall explicitly. When true, a nonzero shortfall is
  // reported as a violation.
  bool require_demand_met = false;
  // Likewise for energy demand that renewable+battery+grid cannot cover.
  bool require_energy_served = true;
  double tolerance = 1e-6;
};

std::vector<std::string> validate_decision(const NetworkState& pre_state,
                                           const SlotInputs& inputs,
                                           const SlotDecision& decision,
                                           const ValidateOptions& options = {});

}  // namespace gc::core
