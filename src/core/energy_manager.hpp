// Subproblem S4 — energy management (Section IV-C4).
//
// Given the slot's schedule (which fixes each node's energy demand E_i via
// eqs. (2) and (23)), choose per node the renewable split (r_i, c_i^r), the
// battery action (c_i, d_i), and the grid draws (g_i, c_i^g) minimizing
//   Psi4 = sum_i z_i (c_i - d_i) + V f(P(t)),
// subject to (9)-(14), where P(t) sums the *base stations'* grid draws.
//
// The paper solves S4 with CPLEX. We provide two solvers:
//
//  * price_energy_manage: exploits that S4 separates across nodes
//    once the grid's marginal price pi = V f'(P) is known. Each node's best
//    response to pi has a closed form that respects the charge-XOR-discharge
//    rule (9) by construction; aggregate base-station demand D(pi) is
//    non-increasing while V f'(.) is strictly increasing, so bisection finds
//    the consistent price.
//  * lp_energy_manage (controller default): one LP over all nodes with f
//    replaced by a tangent-line PWL epigraph; exact up to the PWL gap, with
//    degenerate charge/discharge ties cancelled afterwards so (9) holds.
//    The price solver is within ~2% (it is all-or-nothing at the marginal
//    node) and ~100x faster; pick it via ControllerOptions for large sweeps.
//
// Deviation from the paper (documented in DESIGN.md): eq. (3) forces
// R_i = c_i^r + r_i exactly, which is infeasible when the battery is full
// and demand is low; we allow curtailment (R_i >= c_i^r + r_i) and report
// the curtailed energy. An `unserved_j` slack (minimized with absolute
// priority) keeps the problem feasible when an off-grid node's battery and
// renewables cannot cover its demand; it is zero in normal operation and is
// exercised by the failure-injection tests.
#pragma once

#include <vector>

#include "core/state.hpp"
#include "core/types.hpp"
#include "lp/simplex.hpp"

namespace gc::core {

// E_i(t) for every node under the given schedule (eqs. (2) + (23)).
std::vector<double> compute_energy_demands(
    const NetworkModel& model, const std::vector<ScheduledLink>& schedule);

struct EnergyResult {
  std::vector<NodeEnergyDecision> decisions;  // indexed by node
  double grid_total_j = 0.0;                  // P(t)
  double cost = 0.0;                          // f(P(t))
  double objective = 0.0;  // sum z_i (c_i - d_i) + V f(P)
  double unserved_total_j = 0.0;
};

// Both solvers honor the fault overlay in `inputs`: a down node is inert
// (zero demand, no renewable intake, no grid draw, battery frozen), and
// `inputs.cost_multiplier` spikes the slot's tariff to m * f before the
// grid/battery trade-off is made. `lp_options` bounds lp_energy_manage's
// solve (watchdog); a non-Optimal status throws gc::CheckError naming the
// simplex status and the slot, which the controller's fallback ladder
// catches (Lp -> Price).
EnergyResult price_energy_manage(const NetworkState& state,
                                 const SlotInputs& inputs,
                                 const std::vector<double>& demands_j);

// lp_energy_manage's `workspace` (optional) reuses solver buffers across
// slots; no warm-start hint is ever set, so results are identical with or
// without one.
EnergyResult lp_energy_manage(const NetworkState& state,
                              const SlotInputs& inputs,
                              const std::vector<double>& demands_j,
                              int pwl_segments = 64,
                              const lp::Options& lp_options = {},
                              lp::Workspace* workspace = nullptr);

// Psi4 (eq. (38)) of a given decision vector, for tests. `cost_multiplier`
// applies a price spike (pass inputs.cost_multiplier when comparing against
// a faulted slot).
double psi4(const NetworkState& state,
            const std::vector<NodeEnergyDecision>& decisions,
            double cost_multiplier = 1.0);

}  // namespace gc::core
