// Subproblem S4 — energy management (Section IV-C4).
//
// Given the slot's schedule (which fixes each node's energy demand E_i via
// eqs. (2) and (23)), choose per node the renewable split (r_i, c_i^r), the
// battery action (c_i, d_i), and the grid draws (g_i, c_i^g) minimizing
//   Psi4 = sum_i z_i (c_i - d_i) + V f(P(t)),
// subject to (9)-(14), where P(t) sums the *base stations'* grid draws.
//
// The paper solves S4 with CPLEX. We provide two solvers:
//
//  * price_energy_manage: exploits that S4 separates across nodes
//    once the grid's marginal price pi = V f'(P) is known. Each node's best
//    response to pi has a closed form that respects the charge-XOR-discharge
//    rule (9) by construction; aggregate base-station demand D(pi) is
//    non-increasing while V f'(.) is strictly increasing, so bisection finds
//    the consistent price.
//  * lp_energy_manage (controller default): one LP over all nodes with f
//    replaced by a tangent-line PWL epigraph; exact up to the PWL gap, with
//    degenerate charge/discharge ties cancelled afterwards so (9) holds.
//    The price solver is within ~2% (it is all-or-nothing at the marginal
//    node) and ~100x faster; pick it via ControllerOptions for large sweeps.
//
// Deviation from the paper (documented in DESIGN.md): eq. (3) forces
// R_i = c_i^r + r_i exactly, which is infeasible when the battery is full
// and demand is low; we allow curtailment (R_i >= c_i^r + r_i) and report
// the curtailed energy. An `unserved_j` slack (minimized with absolute
// priority) keeps the problem feasible when an off-grid node's battery and
// renewables cannot cover its demand; it is zero in normal operation and is
// exercised by the failure-injection tests.
#pragma once

#include <vector>

#include "core/state.hpp"
#include "core/types.hpp"
#include "lp/simplex.hpp"

namespace gc::util {
class ThreadPool;
}

namespace gc::core {

// E_i(t) for every node under the given schedule (eqs. (2) + (23)).
std::vector<double> compute_energy_demands(
    const NetworkModel& model, const std::vector<ScheduledLink>& schedule);

struct EnergyResult {
  std::vector<NodeEnergyDecision> decisions;  // indexed by node
  double grid_total_j = 0.0;                  // P(t)
  double cost = 0.0;                          // f(P(t))
  double objective = 0.0;  // sum z_i (c_i - d_i) + V f(P)
  double unserved_total_j = 0.0;
};

// Both solvers honor the fault overlay in `inputs`: a down node is inert
// (zero demand, no renewable intake, no grid draw, battery frozen), and
// `inputs.cost_multiplier` spikes the slot's tariff to m * f before the
// grid/battery trade-off is made. `lp_options` bounds lp_energy_manage's
// solve (watchdog); a non-Optimal status throws gc::CheckError naming the
// simplex status and the slot, which the controller's fallback ladder
// catches (Lp -> Price).
EnergyResult price_energy_manage(const NetworkState& state,
                                 const SlotInputs& inputs,
                                 const std::vector<double>& demands_j);

// S4 decomposition (docs/ALGORITHM.md "Why the S4 split is exact"). User
// nodes never appear in the grid-price coupling — their grid energy is
// unpriced (Sec. II-E), so none of their variables touch P, and the joint
// LP separates into one tiny LP over the base stations plus an independent
// per-user problem whose exact optimum is the closed-form best response at
// price 0. On a 500-node topology this shrinks the S4 LP from ~3000
// variables to ~100 while changing nothing the LP could not also have
// chosen (ties aside, which is why Auto keeps the historical joint path on
// small instances).
enum class S4Decompose { Auto, Force, Never };

struct EnergyLpOptions {
  int pwl_segments = 64;
  // Auto decomposes at num_nodes >= decompose_min_nodes; the threshold
  // keeps the paper-scale default (22 nodes) on the joint-LP trajectory
  // bit for bit.
  S4Decompose decompose = S4Decompose::Auto;
  int decompose_min_nodes = 64;
  // Cross-slot warm start (ControllerOptions::warm_across_slots): hint the
  // LP with the previous slot's final variable states through an identity
  // map — the S4 variable layout is fixed across slots for a fixed
  // decomposition mode. Requires a persistent `workspace`; purely a
  // starting-point change (statuses and objectives are unaffected).
  bool warm_across_slots = false;
  // When set (and decomposing), per-user closed forms run as index chunks
  // on this pool. Bit-identical at any thread count: each chunk writes a
  // disjoint range of a preallocated decision vector.
  util::ThreadPool* pool = nullptr;
};

// lp_energy_manage's `workspace` (optional) reuses solver buffers across
// slots; unless warm_across_slots is set no warm-start hint is passed, and
// results are identical with or without one.
EnergyResult lp_energy_manage(const NetworkState& state,
                              const SlotInputs& inputs,
                              const std::vector<double>& demands_j,
                              const EnergyLpOptions& options,
                              const lp::Options& lp_options = {},
                              lp::Workspace* workspace = nullptr);

// Legacy signature: a joint LP over all nodes (S4Decompose::Never) with
// the given PWL resolution. Kept because the ablation benches and tests
// pin this exact historical behavior.
EnergyResult lp_energy_manage(const NetworkState& state,
                              const SlotInputs& inputs,
                              const std::vector<double>& demands_j,
                              int pwl_segments = 64,
                              const lp::Options& lp_options = {},
                              lp::Workspace* workspace = nullptr);

// Psi4 (eq. (38)) of a given decision vector, for tests. `cost_multiplier`
// applies a price spike (pass inputs.cost_multiplier when comparing against
// a faulted slot).
double psi4(const NetworkState& state,
            const std::vector<NodeEnergyDecision>& decisions,
            double cost_multiplier = 1.0);

}  // namespace gc::core
