// Declarative scenario specs (docs/SCENARIOS.md): scenarios are data, not
// code. A JSON file selects the topology/traffic/renewable/tariff
// generators and their parameters; this layer validates it against the
// schema (precise error paths like "topology.cells.rows: expected int >=
// 1", unknown keys rejected), compiles it into sim::ScenarioConfig, and
// serializes the *resolved* spec back to canonical JSON (every field
// present, fixed key order, %.17g numbers) so specs round-trip bit-exactly
// and can be diffed, golden-tested, and hashed.
//
// The scenario hash (FNV-1a 64 over the canonical config-only JSON — the
// name is attribution, not configuration) is the run's identity: it is
// stamped into trace headers and checkpoints, and a checkpoint resume
// under a different hash is refused (sim/simulator.hpp).
#pragma once

#include <cstdint>
#include <string>

#include "sim/scenario.hpp"

namespace gc::scenario {

struct ScenarioSpec {
  // Attribution only; excluded from the hash. Restricted to
  // [A-Za-z0-9._-], at most 64 characters (safe in filenames, trace
  // headers, and reports without escaping).
  std::string name = "default";
  sim::ScenarioConfig config;
};

// Parses and schema-validates one scenario JSON document. Errors are
// gc::CheckError with the offending path and the accepted domain, e.g.
//   topology.cells.rows: expected int >= 1, got -3
//   traffic: unknown key "burstiness" (allowed: kind, sessions, ...)
// Absent keys take the ScenarioConfig defaults, so "{}" is the paper
// scenario named "default".
ScenarioSpec parse_scenario_json(const std::string& text);

// Reads `path` and parses it; file errors and parse errors both name the
// file.
ScenarioSpec load_scenario_file(const std::string& path);

// Canonical resolved dump: every schema key present (defaults filled in),
// fixed key order, 2-space indent, %.17g numbers. parse(to_json(s)) == s,
// and to_json(parse(to_json(s))) == to_json(s) byte for byte. A
// time-of-use tariff block resolves to its multiplier trace, so
// semantically equal specs serialize identically.
std::string to_json(const ScenarioSpec& spec);

// FNV-1a 64-bit over the canonical config-only JSON (to_json with the
// name field dropped). Two specs hash equal iff they resolve to the same
// configuration.
std::uint64_t scenario_hash(const ScenarioSpec& spec);

// FNV-1a 64-bit over the *structural* subset of the canonical config-only
// JSON: everything that shapes the run's state vectors and queue layout.
// Workload knobs that may be swapped at a slot boundary without changing
// any state dimension are excluded — the traffic section contributes only
// its "sessions" arity and the tariff section is dropped entirely
// (docs/ROBUSTNESS.md lists the full swappable-vs-refused matrix). Two
// specs with equal structural hashes can hot-reload into each other
// mid-run (--reload-scenario) and resume each other's checkpoints.
std::uint64_t scenario_structural_hash(const ScenarioSpec& spec);

// Names the first structural field where `a` and `b` differ as a dotted
// path ("traffic.sessions", "energy.bs.battery.capacity_j", ...), or ""
// when the specs are structurally identical. Used to build the precise
// refusal message when a hot-reload would change the run's structure.
std::string first_structural_difference(const ScenarioSpec& a,
                                        const ScenarioSpec& b);

// "0x" + 16 lowercase hex digits; the format used in trace headers and
// human-facing messages.
std::string hash_hex(std::uint64_t hash);

}  // namespace gc::scenario
