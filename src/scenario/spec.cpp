#include "scenario/spec.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "energy/tariff.hpp"
#include "obs/json.hpp"
#include "policy/sleep.hpp"
#include "util/check.hpp"

namespace gc::scenario {

namespace {

using obs::JsonValue;

[[noreturn]] void fail(const std::string& path, const std::string& msg) {
  GC_CHECK_MSG(false, (path.empty() ? std::string("scenario") : path)
                          << ": " << msg);
  std::abort();  // unreachable; GC_CHECK_MSG throws
}

std::string kind_name(const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::Null: return "null";
    case JsonValue::Kind::Bool: return "bool";
    case JsonValue::Kind::Number: return "number";
    case JsonValue::Kind::String: return "string";
    case JsonValue::Kind::Array: return "array";
    case JsonValue::Kind::Object: return "object";
  }
  return "?";
}

// Numeric domain of a schema field, carrying its own error text.
enum class Num {
  Any,           // any finite number
  Positive,      // > 0
  NonNegative,   // >= 0
  Unit,          // [0, 1]
  UnitPositive,  // (0, 1]
};

const char* num_domain(Num d) {
  switch (d) {
    case Num::Any: return "expected number";
    case Num::Positive: return "expected number > 0";
    case Num::NonNegative: return "expected number >= 0";
    case Num::Unit: return "expected number in [0, 1]";
    case Num::UnitPositive: return "expected number in (0, 1]";
  }
  return "expected number";
}

bool num_ok(Num d, double v) {
  if (!std::isfinite(v)) return false;
  switch (d) {
    case Num::Any: return true;
    case Num::Positive: return v > 0.0;
    case Num::NonNegative: return v >= 0.0;
    case Num::Unit: return v >= 0.0 && v <= 1.0;
    case Num::UnitPositive: return v > 0.0 && v <= 1.0;
  }
  return false;
}

// One (sub)object of the spec. Getters validate + default in one step and
// record every schema key they are asked for, so close() can reject
// unknown keys while listing the full accepted set. A Section built on an
// absent member yields defaults everywhere — "{}" is the paper scenario.
class Section {
 public:
  Section(const JsonValue* v, std::string path)
      : v_(v), path_(std::move(path)) {
    if (v_ != nullptr && !v_->is_object())
      fail(path_, "expected object, got " + kind_name(*v_));
  }

  bool present() const { return v_ != nullptr; }

  Section sub(const char* key) {
    note(key);
    const JsonValue* child =
        v_ != nullptr && v_->has(key) ? &v_->at(key) : nullptr;
    return Section(child, join(key));
  }

  // Array of objects: each element becomes its own Section at path
  // "key[i]". An absent key yields an empty vector.
  std::vector<Section> sub_array(const char* key) {
    note(key);
    std::vector<Section> out;
    if (v_ == nullptr || !v_->has(key)) return out;
    const JsonValue& j = v_->at(key);
    if (!j.is_array())
      fail(join(key), "expected array of objects, got " + kind_name(j));
    for (std::size_t i = 0; i < j.as_array().size(); ++i)
      out.emplace_back(&j.as_array()[i],
                       join(key) + "[" + std::to_string(i) + "]");
    return out;
  }

  double number(const char* key, double def, Num domain) {
    note(key);
    if (v_ == nullptr || !v_->has(key)) return def;
    const JsonValue& j = v_->at(key);
    if (!j.is_number())
      fail(join(key), std::string(num_domain(domain)) + ", got " +
                          kind_name(j));
    const double v = j.as_number();
    if (!num_ok(domain, v))
      fail(join(key), std::string(num_domain(domain)) + ", got " + fmt(v));
    return v;
  }

  int integer(const char* key, int def, int min) {
    note(key);
    if (v_ == nullptr || !v_->has(key)) return def;
    const JsonValue& j = v_->at(key);
    const std::string domain = "expected int >= " + std::to_string(min);
    if (!j.is_number()) fail(join(key), domain + ", got " + kind_name(j));
    const double v = j.as_number();
    if (v != std::floor(v) || v < min || v > 2147483647.0)
      fail(join(key), domain + ", got " + fmt(v));
    return static_cast<int>(v);
  }

  std::uint64_t u64(const char* key, std::uint64_t def) {
    note(key);
    if (v_ == nullptr || !v_->has(key)) return def;
    const JsonValue& j = v_->at(key);
    const char* domain = "expected non-negative int";
    if (!j.is_number())
      fail(join(key), std::string(domain) + ", got " + kind_name(j));
    const double v = j.as_number();
    if (v != std::floor(v) || v < 0.0)
      fail(join(key), std::string(domain) + ", got " + fmt(v));
    return static_cast<std::uint64_t>(v);
  }

  bool boolean(const char* key, bool def) {
    note(key);
    if (v_ == nullptr || !v_->has(key)) return def;
    const JsonValue& j = v_->at(key);
    if (j.kind() != JsonValue::Kind::Bool)
      fail(join(key), "expected bool, got " + kind_name(j));
    return j.as_bool();
  }

  // String restricted to `allowed` (an enum); returns its index.
  int choice(const char* key, int def,
             const std::vector<std::string>& allowed) {
    note(key);
    if (v_ == nullptr || !v_->has(key)) return def;
    const JsonValue& j = v_->at(key);
    std::string domain = "expected one of ";
    for (std::size_t i = 0; i < allowed.size(); ++i)
      domain += (i ? ", \"" : "\"") + allowed[i] + "\"";
    if (j.kind() != JsonValue::Kind::String)
      fail(join(key), domain + ", got " + kind_name(j));
    for (std::size_t i = 0; i < allowed.size(); ++i)
      if (j.as_string() == allowed[i]) return static_cast<int>(i);
    fail(join(key), domain + ", got \"" + j.as_string() + "\"");
  }

  std::vector<double> number_array(const char* key, Num domain) {
    note(key);
    std::vector<double> out;
    if (v_ == nullptr || !v_->has(key)) return out;
    const JsonValue& j = v_->at(key);
    if (!j.is_array())
      fail(join(key), "expected array of numbers, got " + kind_name(j));
    for (std::size_t i = 0; i < j.as_array().size(); ++i) {
      const JsonValue& e = j.as_array()[i];
      const std::string epath = join(key) + "[" + std::to_string(i) + "]";
      if (!e.is_number())
        fail(epath, std::string(num_domain(domain)) + ", got " + kind_name(e));
      if (!num_ok(domain, e.as_number()))
        fail(epath,
             std::string(num_domain(domain)) + ", got " + fmt(e.as_number()));
      out.push_back(e.as_number());
    }
    return out;
  }

  std::string name_string(const char* key, const std::string& def) {
    note(key);
    if (v_ == nullptr || !v_->has(key)) return def;
    const JsonValue& j = v_->at(key);
    const char* domain =
        "expected string of [A-Za-z0-9._-], at most 64 characters";
    if (j.kind() != JsonValue::Kind::String)
      fail(join(key), std::string(domain) + ", got " + kind_name(j));
    const std::string& s = j.as_string();
    bool ok = !s.empty() && s.size() <= 64;
    for (char c : s)
      ok = ok && (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
                  c == '_' || c == '-');
    if (!ok) fail(join(key), std::string(domain) + ", got \"" + s + "\"");
    return s;
  }

  // Rejects keys the schema never asked about. Call after every getter.
  void close() {
    if (v_ == nullptr) return;
    for (const auto& [key, value] : v_->as_object()) {
      bool known = false;
      for (const auto& k : known_) known = known || k == key;
      if (known) continue;
      std::string allowed;
      for (std::size_t i = 0; i < known_.size(); ++i)
        allowed += (i ? ", " : "") + known_[i];
      fail(path_.empty() ? "scenario" : path_,
           "unknown key \"" + key + "\" (allowed: " + allowed + ")");
    }
  }

 private:
  std::string join(const char* key) const {
    return path_.empty() ? std::string(key) : path_ + "." + key;
  }
  void note(const char* key) {
    for (const auto& k : known_)
      if (k == key) return;
    known_.push_back(key);
  }
  static std::string fmt(double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
  }

  const JsonValue* v_;
  std::string path_;
  std::vector<std::string> known_;
};

using sim::RenewableSpec;
using sim::ScenarioConfig;
using sim::TopologySpec;
using sim::TrafficSpec;

const std::vector<std::string> kLayouts = {"paper", "hex_grid"};
const std::vector<std::string> kPlacements = {"uniform", "poisson",
                                              "clustered"};
const std::vector<std::string> kTrafficKinds = {"constant", "diurnal",
                                                "bursty", "flash_crowd"};
const std::vector<std::string> kRenewableKinds = {"uniform", "solar", "wind"};
const std::vector<std::string> kTariffKinds = {"flat", "time_of_use",
                                               "trace"};
const std::vector<std::string> kPhyPolicies = {"min_power_fixed_rate",
                                               "max_power_adaptive_rate"};
// Must match policy::parse_sleep_policy / sleep_policy_name and the
// SleepPolicy enum order.
const std::vector<std::string> kSleepPolicies = {
    "always-on", "threshold", "hysteresis", "drift-plus-penalty"};

void parse_battery(Section& s, double& capacity_j, double& charge_j,
                   double& discharge_j, double& initial_frac) {
  capacity_j = s.number("capacity_j", capacity_j, Num::NonNegative);
  charge_j = s.number("charge_j", charge_j, Num::NonNegative);
  discharge_j = s.number("discharge_j", discharge_j, Num::NonNegative);
  initial_frac = s.number("initial_frac", initial_frac, Num::Unit);
  s.close();
}

ScenarioSpec parse_root(const JsonValue& root) {
  ScenarioSpec spec;
  ScenarioConfig& c = spec.config;
  Section r(&root, "");

  spec.name = r.name_string("name", spec.name);
  c.seed = r.u64("seed", c.seed);

  {
    Section topo = r.sub("topology");
    c.topology.layout = static_cast<TopologySpec::Layout>(
        topo.choice("layout", static_cast<int>(c.topology.layout), kLayouts));
    c.area_m = topo.number("area_m", c.area_m, Num::Positive);
    {
      Section cells = topo.sub("cells");
      c.topology.rows = cells.integer("rows", c.topology.rows, 1);
      c.topology.cols = cells.integer("cols", c.topology.cols, 1);
      c.topology.cell_radius_m =
          cells.number("radius_m", c.topology.cell_radius_m, Num::Positive);
      cells.close();
    }
    {
      Section users = topo.sub("users");
      c.num_users = users.integer("count", c.num_users, 1);
      c.topology.placement = static_cast<TopologySpec::Placement>(
          users.choice("placement", static_cast<int>(c.topology.placement),
                       kPlacements));
      c.topology.hotspots = users.integer("hotspots", c.topology.hotspots, 1);
      c.topology.hotspot_sigma_m = users.number(
          "hotspot_sigma_m", c.topology.hotspot_sigma_m, Num::Positive);
      c.topology.hotspot_fraction = users.number(
          "hotspot_fraction", c.topology.hotspot_fraction, Num::Unit);
      users.close();
    }
    topo.close();
  }

  {
    Section radio = r.sub("radio");
    c.radio.sinr_threshold =
        radio.number("sinr_threshold", c.radio.sinr_threshold, Num::Positive);
    c.radio.noise_psd_w_per_hz =
        radio.number("noise_psd_w_per_hz", c.radio.noise_psd_w_per_hz, Num::Positive);
    radio.close();
  }

  {
    Section prop = r.sub("propagation");
    c.propagation.antenna_constant = prop.number(
        "antenna_constant", c.propagation.antenna_constant, Num::Positive);
    c.propagation.path_loss_exponent =
        prop.number("path_loss_exponent", c.propagation.path_loss_exponent,
                    Num::Positive);
    c.propagation.min_distance_m = prop.number(
        "min_distance_m", c.propagation.min_distance_m, Num::Positive);
    prop.close();
  }

  {
    Section spectrum = r.sub("spectrum");
    c.spectrum.cellular_bandwidth_hz =
        spectrum.number("cellular_bandwidth_hz",
                        c.spectrum.cellular_bandwidth_hz, Num::Positive);
    c.spectrum.num_random_bands =
        spectrum.integer("num_random_bands", c.spectrum.num_random_bands, 0);
    c.spectrum.random_bandwidth_lo_hz =
        spectrum.number("random_bandwidth_lo_hz",
                        c.spectrum.random_bandwidth_lo_hz, Num::Positive);
    c.spectrum.random_bandwidth_hi_hz =
        spectrum.number("random_bandwidth_hi_hz",
                        c.spectrum.random_bandwidth_hi_hz, Num::Positive);
    c.spectrum.user_band_probability = spectrum.number(
        "user_band_probability", c.spectrum.user_band_probability, Num::Unit);
    spectrum.close();
  }

  {
    Section time = r.sub("time");
    c.slot_seconds = time.number("slot_seconds", c.slot_seconds, Num::Positive);
    c.packet_bits = time.number("packet_bits", c.packet_bits, Num::Positive);
    time.close();
  }

  {
    Section traffic = r.sub("traffic");
    c.traffic.kind = static_cast<TrafficSpec::Kind>(traffic.choice(
        "kind", static_cast<int>(c.traffic.kind), kTrafficKinds));
    c.num_sessions = traffic.integer("sessions", c.num_sessions, 1);
    c.session_rate_bps =
        traffic.number("rate_bps", c.session_rate_bps, Num::Positive);
    c.admit_factor =
        traffic.number("admit_factor", c.admit_factor, Num::Positive);
    c.traffic.slots_per_day =
        traffic.integer("slots_per_day", c.traffic.slots_per_day, 2);
    c.traffic.amplitude =
        traffic.number("amplitude", c.traffic.amplitude, Num::Unit);
    c.traffic.peak_phase =
        traffic.number("peak_phase", c.traffic.peak_phase, Num::Unit);
    c.traffic.on_mult =
        traffic.number("on_mult", c.traffic.on_mult, Num::NonNegative);
    c.traffic.off_mult =
        traffic.number("off_mult", c.traffic.off_mult, Num::NonNegative);
    c.traffic.p_on_off =
        traffic.number("p_on_off", c.traffic.p_on_off, Num::UnitPositive);
    c.traffic.p_off_on =
        traffic.number("p_off_on", c.traffic.p_off_on, Num::UnitPositive);
    c.traffic.block_slots =
        traffic.integer("block_slots", c.traffic.block_slots, 1);
    c.traffic.start_slot =
        traffic.integer("start_slot", c.traffic.start_slot, 0);
    c.traffic.duration_slots =
        traffic.integer("duration_slots", c.traffic.duration_slots, 1);
    c.traffic.spike_multiplier = traffic.number(
        "spike_multiplier", c.traffic.spike_multiplier, Num::NonNegative);
    traffic.close();
  }

  {
    Section renew = r.sub("renewables");
    c.renewable.kind = static_cast<RenewableSpec::Kind>(renew.choice(
        "kind", static_cast<int>(c.renewable.kind), kRenewableKinds));
    c.bs_renewable_peak_w =
        renew.number("bs_peak_w", c.bs_renewable_peak_w, Num::NonNegative);
    c.user_renewable_peak_w =
        renew.number("user_peak_w", c.user_renewable_peak_w, Num::NonNegative);
    c.renewable.slots_per_day =
        renew.integer("slots_per_day", c.renewable.slots_per_day, 2);
    c.renewable.clearness_lo =
        renew.number("clearness_lo", c.renewable.clearness_lo, Num::Unit);
    c.renewable.weibull_shape =
        renew.number("weibull_shape", c.renewable.weibull_shape, Num::Positive);
    c.renewable.rated_speed_ratio = renew.number(
        "rated_speed_ratio", c.renewable.rated_speed_ratio, Num::Positive);
    renew.close();
  }

  {
    Section tariff = r.sub("tariff");
    const int kind = tariff.choice("kind", 0, kTariffKinds);
    const int slots_per_day = tariff.integer("slots_per_day", 24, 1);
    const int peak_begin = tariff.integer("peak_begin", 8, 0);
    const int peak_end = tariff.integer("peak_end", 20, 0);
    const double peak_mult = tariff.number("peak_mult", 2.0, Num::Positive);
    const double offpeak_mult =
        tariff.number("offpeak_mult", 1.0, Num::Positive);
    const std::vector<double> multipliers =
        tariff.number_array("multipliers", Num::Positive);
    tariff.close();
    switch (kind) {
      case 0:  // flat
        c.tariff_multipliers.clear();
        break;
      case 1:  // time_of_use
        if (!(peak_begin <= peak_end && peak_end <= slots_per_day))
          fail("tariff",
               "time_of_use needs peak_begin <= peak_end <= slots_per_day");
        c.tariff_multipliers = energy::time_of_use_tariff(
            slots_per_day, peak_begin, peak_end, peak_mult, offpeak_mult);
        break;
      default:  // trace
        if (multipliers.empty())
          fail("tariff.multipliers",
               "expected non-empty array of numbers > 0 for kind \"trace\"");
        c.tariff_multipliers = multipliers;
        break;
    }
  }

  {
    Section e = r.sub("energy");
    {
      Section bs = e.sub("bs");
      c.bs_const_w = bs.number("const_w", c.bs_const_w, Num::NonNegative);
      c.bs_idle_w = bs.number("idle_w", c.bs_idle_w, Num::NonNegative);
      c.bs_recv_w = bs.number("recv_w", c.bs_recv_w, Num::NonNegative);
      c.bs_tx_max_w = bs.number("tx_max_w", c.bs_tx_max_w, Num::Positive);
      c.bs_grid_max_j =
          bs.number("grid_max_j", c.bs_grid_max_j, Num::NonNegative);
      {
        Section batt = bs.sub("battery");
        parse_battery(batt, c.bs_batt_capacity_j, c.bs_batt_charge_j,
                      c.bs_batt_discharge_j, c.bs_batt_initial_frac);
      }
      bs.close();
    }
    {
      Section user = e.sub("user");
      c.user_const_w = user.number("const_w", c.user_const_w, Num::NonNegative);
      c.user_idle_w = user.number("idle_w", c.user_idle_w, Num::NonNegative);
      c.user_recv_w = user.number("recv_w", c.user_recv_w, Num::NonNegative);
      c.user_tx_max_w =
          user.number("tx_max_w", c.user_tx_max_w, Num::Positive);
      c.user_grid_max_j =
          user.number("grid_max_j", c.user_grid_max_j, Num::NonNegative);
      c.user_connect_probability = user.number(
          "connect_probability", c.user_connect_probability, Num::Unit);
      {
        Section batt = user.sub("battery");
        parse_battery(batt, c.user_batt_capacity_j, c.user_batt_charge_j,
                      c.user_batt_discharge_j, c.user_batt_initial_frac);
      }
      user.close();
    }
    {
      Section cost = e.sub("cost");
      c.cost_a = cost.number("a", c.cost_a, Num::NonNegative);
      c.cost_b = cost.number("b", c.cost_b, Num::NonNegative);
      c.cost_c = cost.number("c", c.cost_c, Num::NonNegative);
      cost.close();
    }
    e.close();
  }

  {
    // Base-station tiers + sleep policy (src/policy). The whole section is
    // optional; absent means one homogeneous always-on tier, the paper
    // scenario. Tier power fields override energy.bs for the covered BS
    // indices and are structural; the sleep block is behavioral only.
    Section bs = r.sub("bs");
    for (Section& tier : bs.sub_array("tiers")) {
      policy::TierSpec t;
      t.name = tier.name_string("name", t.name);
      t.count = tier.integer("count", t.count, 1);
      t.const_w = tier.number("const_w", t.const_w, Num::NonNegative);
      t.idle_w = tier.number("idle_w", t.idle_w, Num::NonNegative);
      t.recv_w = tier.number("recv_w", t.recv_w, Num::NonNegative);
      t.tx_max_w = tier.number("tx_max_w", t.tx_max_w, Num::Positive);
      t.sleep_power_w =
          tier.number("sleep_power_w", t.sleep_power_w, Num::NonNegative);
      t.wake_latency_slots =
          tier.integer("wake_latency_slots", t.wake_latency_slots, 0);
      t.sleep_switch_j =
          tier.number("sleep_switch_j", t.sleep_switch_j, Num::NonNegative);
      t.wake_switch_j =
          tier.number("wake_switch_j", t.wake_switch_j, Num::NonNegative);
      t.can_sleep = tier.boolean("can_sleep", t.can_sleep);
      tier.close();
      c.bs_tiers.push_back(t);
    }
    {
      Section sleep = bs.sub("sleep");
      c.bs_sleep.policy = static_cast<policy::SleepPolicy>(sleep.choice(
          "policy", static_cast<int>(c.bs_sleep.policy), kSleepPolicies));
      c.bs_sleep.sleep_threshold = sleep.number(
          "sleep_threshold", c.bs_sleep.sleep_threshold, Num::NonNegative);
      c.bs_sleep.wake_threshold = sleep.number(
          "wake_threshold", c.bs_sleep.wake_threshold, Num::NonNegative);
      c.bs_sleep.min_dwell_slots =
          sleep.integer("min_dwell_slots", c.bs_sleep.min_dwell_slots, 0);
      c.bs_sleep.min_awake_bs =
          sleep.integer("min_awake_bs", c.bs_sleep.min_awake_bs, 1);
      c.bs_sleep.switch_cost_weight = sleep.number(
          "switch_cost_weight", c.bs_sleep.switch_cost_weight, Num::NonNegative);
      sleep.close();
      if (c.bs_sleep.wake_threshold < c.bs_sleep.sleep_threshold)
        fail("bs.sleep", "wake_threshold must be >= sleep_threshold");
    }
    bs.close();
  }

  {
    Section arch = r.sub("architecture");
    c.multihop = arch.boolean("multihop", c.multihop);
    c.renewables = arch.boolean("renewables", c.renewables);
    c.bs_radios = arch.integer("bs_radios", c.bs_radios, 1);
    c.user_radios = arch.integer("user_radios", c.user_radios, 1);
    c.phy_policy = static_cast<core::ModelConfig::PhyPolicy>(arch.choice(
        "phy_policy", static_cast<int>(c.phy_policy), kPhyPolicies));
    arch.close();
  }

  {
    Section algo = r.sub("algorithm");
    c.lambda = algo.number("lambda", c.lambda, Num::NonNegative);
    algo.close();
  }

  r.close();
  return spec;
}

// ---- Canonical writer ------------------------------------------------

class Writer {
 public:
  std::string take() { return std::move(out_); }

  void open(const char* key) {
    item(key);
    out_ += '{';
    ++depth_;
    first_ = true;
  }
  void close() {
    --depth_;
    newline();
    out_ += '}';
    first_ = false;
    if (depth_ == 0) out_ += '\n';
  }
  // Array of objects; elements open with open(nullptr).
  void open_array(const char* key) {
    item(key);
    out_ += '[';
    ++depth_;
    first_ = true;
  }
  void close_array() {
    --depth_;
    newline();
    out_ += ']';
    first_ = false;
  }
  void field(const char* key, double v) {
    item(key);
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out_ += buf;
  }
  void field(const char* key, int v) {
    item(key);
    out_ += std::to_string(v);
  }
  void field(const char* key, std::uint64_t v) {
    item(key);
    out_ += std::to_string(v);
  }
  void field(const char* key, bool v) {
    item(key);
    out_ += v ? "true" : "false";
  }
  void field(const char* key, const std::string& v) {
    item(key);
    out_ += '"';
    out_ += obs::json_escape(v);
    out_ += '"';
  }
  void field(const char* key, const std::vector<double>& v) {
    item(key);
    out_ += '[';
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) out_ += ", ";
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", v[i]);
      out_ += buf;
    }
    out_ += ']';
  }

 private:
  void item(const char* key) {
    if (depth_ == 0) {  // root object opens implicitly
      out_ += '{';
      ++depth_;
      first_ = true;
    }
    if (!first_) out_ += ',';
    first_ = false;
    newline();
    if (key != nullptr) {
      out_ += '"';
      out_ += key;
      out_ += "\": ";
    }
  }
  void newline() {
    out_ += '\n';
    out_.append(static_cast<std::size_t>(depth_) * 2, ' ');
  }

  std::string out_;
  int depth_ = 0;
  bool first_ = true;
};

// structural_only drops the workload-shaping fields that hot-reload may
// swap at a slot boundary: the traffic section keeps only "sessions" (the
// per-user queue arity) and the tariff section vanishes. Everything else —
// topology, radio, energy, architecture, algorithm — fixes state-vector
// dimensions or decision structure and stays in.
std::string serialize(const ScenarioSpec& spec, bool include_name,
                      bool structural_only = false) {
  const ScenarioConfig& c = spec.config;
  Writer w;
  if (include_name) w.field("name", spec.name);
  w.field("seed", c.seed);

  w.open("topology");
  w.field("layout", kLayouts[static_cast<int>(c.topology.layout)]);
  w.field("area_m", c.area_m);
  w.open("cells");
  w.field("rows", c.topology.rows);
  w.field("cols", c.topology.cols);
  w.field("radius_m", c.topology.cell_radius_m);
  w.close();
  w.open("users");
  w.field("count", c.num_users);
  w.field("placement", kPlacements[static_cast<int>(c.topology.placement)]);
  w.field("hotspots", c.topology.hotspots);
  w.field("hotspot_sigma_m", c.topology.hotspot_sigma_m);
  w.field("hotspot_fraction", c.topology.hotspot_fraction);
  w.close();
  w.close();

  w.open("radio");
  w.field("sinr_threshold", c.radio.sinr_threshold);
  w.field("noise_psd_w_per_hz", c.radio.noise_psd_w_per_hz);
  w.close();

  w.open("propagation");
  w.field("antenna_constant", c.propagation.antenna_constant);
  w.field("path_loss_exponent", c.propagation.path_loss_exponent);
  w.field("min_distance_m", c.propagation.min_distance_m);
  w.close();

  w.open("spectrum");
  w.field("cellular_bandwidth_hz", c.spectrum.cellular_bandwidth_hz);
  w.field("num_random_bands", c.spectrum.num_random_bands);
  w.field("random_bandwidth_lo_hz", c.spectrum.random_bandwidth_lo_hz);
  w.field("random_bandwidth_hi_hz", c.spectrum.random_bandwidth_hi_hz);
  w.field("user_band_probability", c.spectrum.user_band_probability);
  w.close();

  w.open("time");
  w.field("slot_seconds", c.slot_seconds);
  w.field("packet_bits", c.packet_bits);
  w.close();

  w.open("traffic");
  if (structural_only) {
    w.field("sessions", c.num_sessions);
  } else {
    w.field("kind", kTrafficKinds[static_cast<int>(c.traffic.kind)]);
    w.field("sessions", c.num_sessions);
    w.field("rate_bps", c.session_rate_bps);
    w.field("admit_factor", c.admit_factor);
    w.field("slots_per_day", c.traffic.slots_per_day);
    w.field("amplitude", c.traffic.amplitude);
    w.field("peak_phase", c.traffic.peak_phase);
    w.field("on_mult", c.traffic.on_mult);
    w.field("off_mult", c.traffic.off_mult);
    w.field("p_on_off", c.traffic.p_on_off);
    w.field("p_off_on", c.traffic.p_off_on);
    w.field("block_slots", c.traffic.block_slots);
    w.field("start_slot", c.traffic.start_slot);
    w.field("duration_slots", c.traffic.duration_slots);
    w.field("spike_multiplier", c.traffic.spike_multiplier);
  }
  w.close();

  w.open("renewables");
  w.field("kind", kRenewableKinds[static_cast<int>(c.renewable.kind)]);
  w.field("bs_peak_w", c.bs_renewable_peak_w);
  w.field("user_peak_w", c.user_renewable_peak_w);
  w.field("slots_per_day", c.renewable.slots_per_day);
  w.field("clearness_lo", c.renewable.clearness_lo);
  w.field("weibull_shape", c.renewable.weibull_shape);
  w.field("rated_speed_ratio", c.renewable.rated_speed_ratio);
  w.close();

  // The resolved form of every tariff is its multiplier trace (or flat):
  // time_of_use inputs expand here, so equal configs serialize equally.
  // Tariffs never shape state, so structural mode drops the section.
  if (!structural_only) {
    w.open("tariff");
    if (c.tariff_multipliers.empty()) {
      w.field("kind", std::string("flat"));
    } else {
      w.field("kind", std::string("trace"));
      w.field("multipliers", c.tariff_multipliers);
    }
    w.close();
  }

  w.open("energy");
  w.open("bs");
  w.field("const_w", c.bs_const_w);
  w.field("idle_w", c.bs_idle_w);
  w.field("recv_w", c.bs_recv_w);
  w.field("tx_max_w", c.bs_tx_max_w);
  w.field("grid_max_j", c.bs_grid_max_j);
  w.open("battery");
  w.field("capacity_j", c.bs_batt_capacity_j);
  w.field("charge_j", c.bs_batt_charge_j);
  w.field("discharge_j", c.bs_batt_discharge_j);
  w.field("initial_frac", c.bs_batt_initial_frac);
  w.close();
  w.close();
  w.open("user");
  w.field("const_w", c.user_const_w);
  w.field("idle_w", c.user_idle_w);
  w.field("recv_w", c.user_recv_w);
  w.field("tx_max_w", c.user_tx_max_w);
  w.field("grid_max_j", c.user_grid_max_j);
  w.field("connect_probability", c.user_connect_probability);
  w.open("battery");
  w.field("capacity_j", c.user_batt_capacity_j);
  w.field("charge_j", c.user_batt_charge_j);
  w.field("discharge_j", c.user_batt_discharge_j);
  w.field("initial_frac", c.user_batt_initial_frac);
  w.close();
  w.close();
  w.open("cost");
  w.field("a", c.cost_a);
  w.field("b", c.cost_b);
  w.field("c", c.cost_c);
  w.close();
  w.close();

  // The bs section (tiers + sleep policy) is emitted only when non-default,
  // so every pre-tier scenario keeps its hash. Tiers change the built
  // NodeParams and stay in structural mode; the sleep block, like the
  // tariff, is hot-swappable and drops out.
  const bool sleep_default = c.bs_sleep == policy::SleepPolicyConfig{};
  if (!c.bs_tiers.empty() || (!structural_only && !sleep_default)) {
    w.open("bs");
    if (!c.bs_tiers.empty()) {
      w.open_array("tiers");
      for (const auto& t : c.bs_tiers) {
        w.open(nullptr);
        w.field("name", t.name);
        w.field("count", t.count);
        w.field("const_w", t.const_w);
        w.field("idle_w", t.idle_w);
        w.field("recv_w", t.recv_w);
        w.field("tx_max_w", t.tx_max_w);
        w.field("sleep_power_w", t.sleep_power_w);
        w.field("wake_latency_slots", t.wake_latency_slots);
        w.field("sleep_switch_j", t.sleep_switch_j);
        w.field("wake_switch_j", t.wake_switch_j);
        w.field("can_sleep", t.can_sleep);
        w.close();
      }
      w.close_array();
    }
    if (!structural_only && !sleep_default) {
      w.open("sleep");
      w.field("policy", std::string(policy::sleep_policy_name(
                            c.bs_sleep.policy)));
      w.field("sleep_threshold", c.bs_sleep.sleep_threshold);
      w.field("wake_threshold", c.bs_sleep.wake_threshold);
      w.field("min_dwell_slots", c.bs_sleep.min_dwell_slots);
      w.field("min_awake_bs", c.bs_sleep.min_awake_bs);
      w.field("switch_cost_weight", c.bs_sleep.switch_cost_weight);
      w.close();
    }
    w.close();
  }

  w.open("architecture");
  w.field("multihop", c.multihop);
  w.field("renewables", c.renewables);
  w.field("bs_radios", c.bs_radios);
  w.field("user_radios", c.user_radios);
  w.field("phy_policy", kPhyPolicies[static_cast<int>(c.phy_policy)]);
  w.close();

  w.open("algorithm");
  w.field("lambda", c.lambda);
  w.close();

  w.close();  // root object
  return w.take();
}

}  // namespace

ScenarioSpec parse_scenario_json(const std::string& text) {
  const JsonValue root = obs::json_parse(text);
  if (!root.is_object())
    fail("scenario", "expected a top-level object");
  return parse_root(root);
}

ScenarioSpec load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  GC_CHECK_MSG(in.good(), "cannot open scenario file " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_scenario_json(buf.str());
  } catch (const CheckError& e) {
    GC_CHECK_MSG(false, "scenario file " << path << ": " << e.what());
    throw;  // unreachable
  }
}

std::string to_json(const ScenarioSpec& spec) {
  return serialize(spec, /*include_name=*/true);
}

namespace {

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a 64 offset basis
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;  // FNV-1a 64 prime
  }
  return h;
}

// One canonical-JSON line, decomposed for the structural diff walker.
struct CanonicalLine {
  std::string key;   // "" for pure close lines
  std::string body;  // the full trimmed line (comparison unit)
  bool opens = false;
  bool closes = false;
};

CanonicalLine split_line(const std::string& raw) {
  CanonicalLine out;
  std::size_t b = 0, e = raw.size();
  while (b < e && raw[b] == ' ') ++b;
  while (e > b && (raw[e - 1] == ' ' || raw[e - 1] == ',')) --e;
  out.body = raw.substr(b, e - b);
  if (out.body.size() >= 2 && out.body.front() == '"') {
    const std::size_t endq = out.body.find('"', 1);
    if (endq != std::string::npos) out.key = out.body.substr(1, endq - 1);
  }
  out.opens = !out.body.empty() &&
              (out.body.back() == '{' || out.body.back() == '[');
  out.closes = !out.body.empty() &&
               (out.body.front() == '}' || out.body.front() == ']');
  return out;
}

std::vector<CanonicalLine> split_lines(const std::string& text) {
  std::vector<CanonicalLine> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    if (nl > pos) out.push_back(split_line(text.substr(pos, nl - pos)));
    pos = nl + 1;
  }
  return out;
}

std::string joined_path(const std::vector<std::string>& stack,
                        const std::string& leaf) {
  std::string out;
  for (const auto& s : stack) {
    if (s.empty()) continue;  // keyless array-element brace
    if (!out.empty()) out += '.';
    out += s;
  }
  if (!leaf.empty()) {
    if (!out.empty()) out += '.';
    out += leaf;
  }
  return out.empty() ? "scenario" : out;
}

}  // namespace

std::uint64_t scenario_hash(const ScenarioSpec& spec) {
  return fnv1a64(serialize(spec, /*include_name=*/false));
}

std::uint64_t scenario_structural_hash(const ScenarioSpec& spec) {
  return fnv1a64(serialize(spec, /*include_name=*/false,
                           /*structural_only=*/true));
}

std::string first_structural_difference(const ScenarioSpec& a,
                                        const ScenarioSpec& b) {
  const std::vector<CanonicalLine> la =
      split_lines(serialize(a, false, /*structural_only=*/true));
  const std::vector<CanonicalLine> lb =
      split_lines(serialize(b, false, /*structural_only=*/true));
  // Both streams come from the same serializer, so keys appear in the same
  // fixed order and any difference is a differing value (or, for arrays of
  // different length via future fields, a differing body) at the same
  // position. Walk in lockstep, tracking the object path.
  std::vector<std::string> stack;
  const std::size_t n = std::min(la.size(), lb.size());
  for (std::size_t i = 0; i < n; ++i) {
    const CanonicalLine& x = la[i];
    if (x.body != lb[i].body) {
      const std::string key = !x.key.empty() ? x.key : lb[i].key;
      return joined_path(stack, key);
    }
    if (x.opens) {
      stack.push_back(x.key);
    } else if (x.closes && !stack.empty()) {
      stack.pop_back();
    }
  }
  if (la.size() != lb.size()) {
    const CanonicalLine& extra = la.size() > lb.size() ? la[n] : lb[n];
    return joined_path(stack, extra.key);
  }
  return "";
}

std::string hash_hex(std::uint64_t hash) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace gc::scenario
