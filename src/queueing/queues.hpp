// Queue processes used by the paper.
//
//  * DataQueue      — network-layer per-session buffer Q_i^s, law (15):
//                     Q <- max(Q - served, 0) + relayed_in + admitted.
//  * VirtualLinkQueue — link-layer virtual queue of Section IV-A. We track
//                     G_ij (law (28), packets) and expose H_ij = beta*G_ij
//                     (law (30)); keeping G and scaling by beta is exactly
//                     equivalent to running (30) and avoids duplicate state.
//  * ShiftedEnergyQueue — z_i(t) = x_i(t) - V*gamma_max - d_i^max of
//                     Section IV-B, law (31) driven by the battery.
//
// Queue lengths are doubles so that the relaxed lower-bound solver can run
// the same laws on fractional decisions; the online controller only ever
// feeds integers into DataQueue.
#pragma once

#include <algorithm>

#include "util/check.hpp"

namespace gc::queueing {

// One step of the generic single-server law of Theorem 1:
// q' = max(q - service, 0) + arrivals.
inline double queue_step(double q, double service, double arrivals) {
  GC_CHECK(q >= 0.0 && service >= -1e-12 && arrivals >= -1e-12);
  return std::max(q - std::max(service, 0.0), 0.0) + std::max(arrivals, 0.0);
}

class DataQueue {
 public:
  double length() const { return q_; }

  // served: sum_j l_ij^s; relayed_in: sum_j l_ji^s; admitted: k_s * 1{src}.
  void update(double served, double relayed_in, double admitted) {
    q_ = queue_step(q_, served, relayed_in + admitted);
  }

 private:
  double q_ = 0.0;  // Q(0) = 0 per Section IV-B
};

class VirtualLinkQueue {
 public:
  explicit VirtualLinkQueue(double beta = 1.0) : beta_(beta) {
    GC_CHECK(beta > 0.0);
  }

  double g() const { return g_; }
  double h() const { return beta_ * g_; }
  double beta() const { return beta_; }

  // service_packets: (1/delta) * sum_m c_ij^m alpha_ij^m dt;
  // arrivals_packets: sum_s l_ij^s.  (law (28); h() then follows (30).)
  void update(double service_packets, double arrivals_packets) {
    g_ = queue_step(g_, service_packets, arrivals_packets);
  }

 private:
  double beta_;
  double g_ = 0.0;
};

class ShiftedEnergyQueue {
 public:
  // shift = V * gamma_max + d_max (Section IV-B).
  ShiftedEnergyQueue(double initial_level_j, double shift_j)
      : x_(initial_level_j), shift_(shift_j) {
    GC_CHECK(initial_level_j >= 0.0);
  }

  double x() const { return x_; }
  double z() const { return x_ - shift_; }
  double shift() const { return shift_; }

  // Law (31)/(4): x <- x + c - d. The Battery class enforces the physical
  // constraints; this mirror exists so the controller can reason about z
  // without owning the battery.
  void update(double charge_j, double discharge_j) {
    x_ += charge_j - discharge_j;
    GC_CHECK_MSG(x_ >= -1e-6, "energy queue went negative: " << x_);
    x_ = std::max(x_, 0.0);
  }

 private:
  double x_;
  double shift_;
};

}  // namespace gc::queueing
