#include "net/capacity.hpp"

#include <cmath>

namespace gc::net {

double nominal_capacity_bps(double bandwidth_hz, double sinr_threshold) {
  GC_CHECK(bandwidth_hz >= 0.0);
  GC_CHECK(sinr_threshold > 0.0);
  return bandwidth_hz * std::log2(1.0 + sinr_threshold);
}

double sinr(const Topology& topo, std::span<const Transmission> transmissions,
            std::size_t which, double bandwidth_hz, const RadioParams& radio) {
  GC_CHECK(which < transmissions.size());
  const Transmission& t = transmissions[which];
  GC_CHECK(t.tx != t.rx);
  double interference = 0.0;
  for (std::size_t k = 0; k < transmissions.size(); ++k) {
    if (k == which) continue;
    const Transmission& other = transmissions[k];
    if (other.power_w <= 0.0) continue;
    GC_CHECK_MSG(other.tx != t.rx, "receiver also transmitting on the band");
    interference += topo.gain(other.tx, t.rx) * other.power_w;
  }
  const double noise = radio.noise_psd_w_per_hz * bandwidth_hz;
  const double denom = noise + interference;
  GC_CHECK(denom > 0.0);
  return topo.gain(t.tx, t.rx) * t.power_w / denom;
}

}  // namespace gc::net
