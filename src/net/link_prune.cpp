#include "net/link_prune.hpp"

namespace gc::net {

LinkPruneMap::LinkPruneMap(const Topology& topo, const Spectrum& spectrum,
                           const RadioParams& radio,
                           const std::vector<double>& max_tx_power_w)
    : n_(topo.num_nodes()), built_version_(topo.version()) {
  GC_CHECK_MSG(static_cast<int>(max_tx_power_w.size()) == n_,
               "one max transmit power per node");
  reach_.assign(static_cast<std::size_t>(n_) * n_, 0);
  out_.assign(static_cast<std::size_t>(n_), {});

  // Per band, the smallest received power that could ever meet the SINR
  // threshold: noise only (interference can only add) over the band's
  // minimum bandwidth (band 0 is the fixed cellular band; random bands
  // realize in [lo, hi], so lo is their floor).
  const auto& sc = spectrum.config();
  const int bands = spectrum.num_bands();
  std::vector<double> need_w(static_cast<std::size_t>(bands), 0.0);
  for (int m = 0; m < bands; ++m) {
    const double w_min =
        m == 0 ? sc.cellular_bandwidth_hz : sc.random_bandwidth_lo_hz;
    need_w[m] = radio.sinr_threshold * radio.noise_psd_w_per_hz * w_min;
  }

  for (int tx = 0; tx < n_; ++tx) {
    for (int rx = 0; rx < n_; ++rx) {
      if (rx == tx) continue;
      const double received_max = max_tx_power_w[tx] * topo.gain(tx, rx);
      bool ok = false;
      for (int m = 0; m < bands && !ok; ++m)
        ok = spectrum.link_band_ok(tx, rx, m) && received_max >= need_w[m];
      if (!ok) continue;
      reach_[static_cast<std::size_t>(tx) * n_ + rx] = 1;
      out_[tx].push_back(rx);
      ++kept_;
    }
  }
}

}  // namespace gc::net
