// Exact radio-range link pruning.
//
// The controller's candidate scans are O(n^2) over ordered node pairs, and
// on city-scale topologies almost every pair is out of radio range: a user
// with a 1 W power cap simply cannot close the SINR threshold against a
// receiver kilometers away. This map precomputes, per transmitter, the
// ascending list of receivers that at least one shared band could close in
// the most favorable case — maximum transmit power, zero interference, the
// band's minimum bandwidth:
//
//   p_max(tx) * g(tx, rx) >= Gamma * N0 * W_min(m)
//
// Interference and wider realized bandwidths only RAISE the power a link
// needs, so a pair failing this test is infeasible under every slot
// realization and every power-control outcome, for both PHY policies:
// MinPowerFixedRate's Foschini–Miljanic iteration can never satisfy it
// (its very first iterate already exceeds p_max), and MaxPowerAdaptiveRate
// drops it below threshold at p_max outright. A pruned link therefore
// carries zero rate always — removing it from the scans is exact, not
// approximate (docs/ALGORITHM.md "Why range pruning is exact").
#pragma once

#include <cstdint>
#include <vector>

#include "net/capacity.hpp"
#include "net/spectrum.hpp"
#include "net/topology.hpp"

namespace gc::net {

class LinkPruneMap {
 public:
  // `max_tx_power_w[i]` = P_max of node i. The map snapshots the
  // topology's version() so owners can detect staleness after mobility.
  LinkPruneMap(const Topology& topo, const Spectrum& spectrum,
               const RadioParams& radio,
               const std::vector<double>& max_tx_power_w);

  bool in_range(int tx, int rx) const {
    return reach_[static_cast<std::size_t>(tx) * n_ + rx] != 0;
  }

  // Receivers tx can reach, ascending — the same order the dense O(n^2)
  // scans visit, so swapping a scan over to the list is order-preserving.
  const std::vector<int>& out_neighbors(int tx) const { return out_[tx]; }

  // Ordered pairs (tx != rx) the dense scan would visit vs how many
  // survive the range test; exported into profile artifacts so speedups
  // stay attributable (tools/perf_report).
  std::int64_t total_links() const {
    return static_cast<std::int64_t>(n_) * (n_ - 1);
  }
  std::int64_t kept_links() const { return kept_; }
  std::int64_t pruned_links() const { return total_links() - kept_; }

  std::uint64_t topology_version() const { return built_version_; }

 private:
  int n_ = 0;
  std::int64_t kept_ = 0;
  std::uint64_t built_version_ = 0;
  std::vector<char> reach_;
  std::vector<std::vector<int>> out_;
};

}  // namespace gc::net
