#include "net/spectrum.hpp"

namespace gc::net {

Spectrum::Spectrum(const SpectrumConfig& config, int num_nodes,
                   int num_base_stations, Rng& rng)
    : config_(config) {
  GC_CHECK(config.num_random_bands >= 0);
  GC_CHECK(config.num_random_bands < 31);
  GC_CHECK(config.cellular_bandwidth_hz > 0.0);
  GC_CHECK(config.random_bandwidth_lo_hz <= config.random_bandwidth_hi_hz);
  GC_CHECK(config.user_band_probability >= 0.0 &&
           config.user_band_probability <= 1.0);
  GC_CHECK(num_base_stations >= 0 && num_base_stations <= num_nodes);

  const std::uint32_t all =
      (num_bands() >= 32) ? ~0u : ((1u << num_bands()) - 1u);
  avail_.assign(static_cast<std::size_t>(num_nodes), 0u);
  for (int i = 0; i < num_nodes; ++i) {
    if (i < num_base_stations) {
      avail_[i] = all;  // base stations access every band
    } else {
      std::uint32_t mask = 1u;  // cellular band always available
      for (int m = 1; m < num_bands(); ++m)
        if (rng.bernoulli(config.user_band_probability)) mask |= (1u << m);
      avail_[i] = mask;
    }
  }

  bandwidth_hz_.assign(static_cast<std::size_t>(num_bands()), 0.0);
  bandwidth_hz_[0] = config.cellular_bandwidth_hz;
  for (int m = 1; m < num_bands(); ++m)
    bandwidth_hz_[m] = config.random_bandwidth_lo_hz;
}

void Spectrum::sample_slot(Rng& rng) {
  for (int m = 1; m < num_bands(); ++m)
    bandwidth_hz_[m] =
        rng.uniform(config_.random_bandwidth_lo_hz, config_.random_bandwidth_hi_hz);
}

double Spectrum::bandwidth_hz(int band) const {
  return bandwidth_hz_[check_band(band)];
}

bool Spectrum::available(int node, int band) const {
  return (avail_[check_node(node)] >> check_band(band)) & 1u;
}

std::uint32_t Spectrum::availability_mask(int node) const {
  return avail_[check_node(node)];
}

}  // namespace gc::net
