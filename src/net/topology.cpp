#include "net/topology.hpp"

#include <cmath>

namespace gc::net {

double distance(const Vec2& a, const Vec2& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

Topology::Topology(std::vector<Vec2> base_stations, std::vector<Vec2> users,
                   const PropagationParams& prop)
    : num_bs_(static_cast<int>(base_stations.size())), prop_(prop) {
  GC_CHECK_MSG(!base_stations.empty(), "need at least one base station");
  GC_CHECK(prop.path_loss_exponent > 0.0);
  GC_CHECK(prop.antenna_constant > 0.0);
  GC_CHECK(prop.min_distance_m > 0.0);
  pos_ = std::move(base_stations);
  pos_.insert(pos_.end(), users.begin(), users.end());

  const int n = num_nodes();
  gain_.assign(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const double d = std::max(gc::net::distance(pos_[i], pos_[j]),
                                prop_.min_distance_m);
      gain_[static_cast<std::size_t>(i) * n + j] =
          prop_.antenna_constant * std::pow(d, -prop_.path_loss_exponent);
    }
  }
}

Topology Topology::paper_layout(int num_users, double area_m,
                                const PropagationParams& prop, Rng& rng) {
  GC_CHECK(num_users >= 0);
  GC_CHECK(area_m > 0.0);
  std::vector<Vec2> bs = {{area_m * 0.25, area_m * 0.25},
                          {area_m * 0.75, area_m * 0.25}};
  std::vector<Vec2> users;
  users.reserve(static_cast<std::size_t>(num_users));
  for (int u = 0; u < num_users; ++u)
    users.push_back(Vec2{rng.uniform(0.0, area_m), rng.uniform(0.0, area_m)});
  return Topology(std::move(bs), std::move(users), prop);
}

double Topology::distance(int i, int j) const {
  return gc::net::distance(pos_[check(i)], pos_[check(j)]);
}

double Topology::gain(int i, int j) const {
  check(i);
  check(j);
  GC_CHECK_MSG(i != j, "gain undefined for i == j");
  return gain_[static_cast<std::size_t>(i) * num_nodes() + j];
}

void Topology::set_position(int node, const Vec2& position) {
  check(node);
  ++version_;
  pos_[node] = position;
  const int n = num_nodes();
  for (int other = 0; other < n; ++other) {
    if (other == node) continue;
    const double d = std::max(gc::net::distance(pos_[node], pos_[other]),
                              prop_.min_distance_m);
    const double g =
        prop_.antenna_constant * std::pow(d, -prop_.path_loss_exponent);
    gain_[static_cast<std::size_t>(node) * n + other] = g;
    gain_[static_cast<std::size_t>(other) * n + node] = g;
  }
}

}  // namespace gc::net
