#include "net/power_control.hpp"

#include <algorithm>
#include <cmath>

namespace gc::net {

PowerControlResult solve_min_powers(const Topology& topo,
                                    std::span<const CoBandLink> links,
                                    double bandwidth_hz,
                                    const RadioParams& radio,
                                    const PowerControlOptions& opt) {
  PowerControlResult result;
  const std::size_t n = links.size();
  result.powers_w.assign(n, 0.0);
  if (n == 0) {
    result.feasible = true;
    return result;
  }
  for (const auto& l : links) {
    GC_CHECK(l.tx != l.rx);
    GC_CHECK(l.max_power_w > 0.0);
  }

  const double gamma = radio.sinr_threshold;
  const double noise = radio.noise_psd_w_per_hz * bandwidth_hz;
  std::vector<double> next(n, 0.0);

  for (int it = 1; it <= opt.max_iterations; ++it) {
    result.iterations = it;
    double max_rel_change = 0.0;
    for (std::size_t l = 0; l < n; ++l) {
      double interference = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        if (k == l) continue;
        interference += topo.gain(links[k].tx, links[l].rx) * result.powers_w[k];
      }
      const double p =
          gamma * (noise + interference) / topo.gain(links[l].tx, links[l].rx);
      next[l] = p;
      if (p > links[l].max_power_w) {
        // Monotonicity from the zero start means the minimal solution (if
        // any) is component-wise >= the current iterate, so exceeding the
        // cap is a proof of infeasibility.
        result.feasible = false;
        result.violating_link = static_cast<int>(l);
        return result;
      }
      const double denom = std::max(result.powers_w[l], 1e-30);
      max_rel_change = std::max(max_rel_change, std::abs(p - result.powers_w[l]) / denom);
    }
    result.powers_w = next;
    if (max_rel_change <= opt.convergence_tol) {
      result.feasible = true;
      return result;
    }
  }

  // No convergence within budget: the spectral radius is at (or extremely
  // close to) 1 — treat as infeasible and blame the link with the highest
  // power demand relative to its cap.
  result.feasible = false;
  double worst = -1.0;
  for (std::size_t l = 0; l < n; ++l) {
    const double frac = result.powers_w[l] / links[l].max_power_w;
    if (frac > worst) {
      worst = frac;
      result.violating_link = static_cast<int>(l);
    }
  }
  return result;
}

}  // namespace gc::net
