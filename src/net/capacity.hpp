// Physical-model link capacity of Section II-B.
//
// A transmission succeeds iff its SINR clears the threshold Gamma, in which
// case the link carries a fixed spectral efficiency (eq. (1)):
//   c_ij^m(t) = W_m(t) * log2(1 + Gamma)   [bits/s]   if SINR >= Gamma,
//               0                                      otherwise.
#pragma once

#include <span>
#include <vector>

#include "net/topology.hpp"
#include "util/check.hpp"

namespace gc::net {

struct RadioParams {
  double sinr_threshold = 1.0;        // Gamma
  double noise_psd_w_per_hz = 1e-20;  // eta (same at all receivers, Sec. VI)
};

// Nominal capacity in bits/s when the SINR threshold is met (eq. (1)).
double nominal_capacity_bps(double bandwidth_hz, double sinr_threshold);

// An active transmission on one band: tx sends to rx at `power_w`.
struct Transmission {
  int tx = -1;
  int rx = -1;
  double power_w = 0.0;
};

// SINR of transmissions[which] given every other entry as interference
// (the denominator of the expression below eq. (1)).
double sinr(const Topology& topo, std::span<const Transmission> transmissions,
            std::size_t which, double bandwidth_hz, const RadioParams& radio);

}  // namespace gc::net
