#include "net/placement.hpp"

#include <algorithm>
#include <cmath>

namespace gc::net {

std::vector<Vec2> hex_grid_centers(const HexGridParams& params,
                                   double* width_m, double* height_m) {
  GC_CHECK_MSG(params.rows >= 1 && params.cols >= 1,
               "hex grid needs rows >= 1 and cols >= 1");
  GC_CHECK_MSG(params.cell_radius_m > 0.0, "hex cell radius must be > 0");
  const double pitch = std::sqrt(3.0) * params.cell_radius_m;
  // Row spacing of a honeycomb is 3/2 * R; odd rows shift half a pitch.
  const double row_step = 1.5 * params.cell_radius_m;
  const double margin = 0.5 * pitch;
  std::vector<Vec2> centers;
  centers.reserve(static_cast<std::size_t>(params.rows) * params.cols);
  for (int r = 0; r < params.rows; ++r) {
    const double offset = (r % 2 == 1) ? 0.5 * pitch : 0.0;
    for (int c = 0; c < params.cols; ++c)
      centers.push_back(
          Vec2{margin + offset + c * pitch, margin + r * row_step});
  }
  if (width_m != nullptr)
    *width_m = (params.cols - 1) * pitch + (params.rows > 1 ? 0.5 * pitch : 0.0) +
               2.0 * margin;
  if (height_m != nullptr) *height_m = (params.rows - 1) * row_step + 2.0 * margin;
  return centers;
}

std::vector<Vec2> place_uniform(int count, double width_m, double height_m,
                                Rng& rng) {
  GC_CHECK(count >= 0);
  GC_CHECK(width_m > 0.0 && height_m > 0.0);
  std::vector<Vec2> points;
  points.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    points.push_back(
        Vec2{rng.uniform(0.0, width_m), rng.uniform(0.0, height_m)});
  return points;
}

std::vector<Vec2> place_poisson(double mean_count, double width_m,
                                double height_m, Rng& rng) {
  GC_CHECK(mean_count >= 0.0);
  const int count = static_cast<int>(rng.poisson(mean_count));
  return place_uniform(count, width_m, height_m, rng);
}

std::vector<Vec2> place_clustered(int count, int hotspots, double sigma_m,
                                  double cluster_fraction, double width_m,
                                  double height_m, Rng& rng) {
  GC_CHECK(count >= 0);
  GC_CHECK_MSG(hotspots >= 1, "clustered placement needs >= 1 hotspot");
  GC_CHECK(sigma_m >= 0.0);
  GC_CHECK(cluster_fraction >= 0.0 && cluster_fraction <= 1.0);
  GC_CHECK(width_m > 0.0 && height_m > 0.0);
  const std::vector<Vec2> centers =
      place_uniform(hotspots, width_m, height_m, rng);
  std::vector<Vec2> points;
  points.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    if (rng.bernoulli(cluster_fraction)) {
      const Vec2& c =
          centers[static_cast<std::size_t>(rng.uniform_int(0, hotspots - 1))];
      const double x = std::clamp(c.x + rng.normal(0.0, sigma_m), 0.0, width_m);
      const double y =
          std::clamp(c.y + rng.normal(0.0, sigma_m), 0.0, height_m);
      points.push_back(Vec2{x, y});
    } else {
      points.push_back(
          Vec2{rng.uniform(0.0, width_m), rng.uniform(0.0, height_m)});
    }
  }
  return points;
}

}  // namespace gc::net
