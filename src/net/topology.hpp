// Network geometry: node positions, base-station/user kinds, and the power
// propagation gain g_ij = C * d(i,j)^-gamma of Section II-B.
//
// Node indexing convention used throughout the project: nodes
// [0, num_base_stations) are base stations, [num_base_stations, num_nodes)
// are mobile users.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace gc::net {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

double distance(const Vec2& a, const Vec2& b);

struct PropagationParams {
  double antenna_constant = 62.5;  // C in g = C d^-gamma (paper Sec. VI)
  double path_loss_exponent = 4.0; // gamma
  // Distance floor so two randomly placed nodes that nearly coincide do not
  // produce an unbounded gain; 1 m is below any plausible device spacing.
  double min_distance_m = 1.0;
};

class Topology {
 public:
  Topology(std::vector<Vec2> base_stations, std::vector<Vec2> users,
           const PropagationParams& prop);

  // The paper's layout: `area` x `area` square, two base stations at
  // (area/4, area/4) and (3*area/4, area/4), `num_users` users placed
  // uniformly at random.
  static Topology paper_layout(int num_users, double area_m,
                               const PropagationParams& prop, Rng& rng);

  int num_nodes() const { return static_cast<int>(pos_.size()); }
  int num_base_stations() const { return num_bs_; }
  int num_users() const { return num_nodes() - num_bs_; }
  bool is_base_station(int node) const { return check(node) < num_bs_; }
  const Vec2& position(int node) const { return pos_[check(node)]; }

  double distance(int i, int j) const;
  // Power propagation gain g_ij; symmetric; undefined for i == j.
  double gain(int i, int j) const;

  // Moves a node and recomputes its gain row/column (O(N)). Used by the
  // mobility models; base stations stay where Section VI put them, but the
  // method itself is position-agnostic.
  void set_position(int node, const Vec2& position);

  const PropagationParams& propagation() const { return prop_; }

  // Monotone mutation counter, bumped by every set_position. Lets caches
  // derived from positions (core::NetworkModel's link-prune map) detect
  // staleness lazily instead of rebuilding on every mobility step.
  std::uint64_t version() const { return version_; }

 private:
  int check(int node) const {
    GC_CHECK_MSG(node >= 0 && node < num_nodes(), "bad node index " << node);
    return node;
  }

  std::vector<Vec2> pos_;
  int num_bs_;
  PropagationParams prop_;
  std::vector<double> gain_;  // cached num_nodes x num_nodes
  std::uint64_t version_ = 0;
};

}  // namespace gc::net
