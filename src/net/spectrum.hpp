// Spectrum model of Section II-A: a set of bands M whose bandwidths
// {W_m(t)} are random processes observed at the start of each slot, and a
// static per-node availability set M_i (base stations can access every band;
// each user sees the cellular band plus a random subset of the others).
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace gc::net {

struct SpectrumConfig {
  // Band 0 is the licensed cellular band with a constant bandwidth.
  double cellular_bandwidth_hz = 1e6;
  // Bands 1..num_random_bands have i.i.d. uniform bandwidth each slot.
  int num_random_bands = 4;
  double random_bandwidth_lo_hz = 1e6;
  double random_bandwidth_hi_hz = 2e6;
  // Probability that a given random band is available at a given user
  // (drawn once at construction; the paper uses a static random subset).
  double user_band_probability = 0.5;
};

class Spectrum {
 public:
  // `rng` seeds the static availability sets; per-slot bandwidths are drawn
  // by sample_slot.
  Spectrum(const SpectrumConfig& config, int num_nodes, int num_base_stations,
           Rng& rng);

  int num_bands() const { return 1 + config_.num_random_bands; }
  int num_nodes() const { return static_cast<int>(avail_.size()); }

  // Draws W_m(t) for the new slot.
  void sample_slot(Rng& rng);

  double bandwidth_hz(int band) const;
  bool available(int node, int band) const;
  // True iff band is in M_i intersect M_j.
  bool link_band_ok(int tx, int rx, int band) const {
    return available(tx, band) && available(rx, band);
  }
  std::uint32_t availability_mask(int node) const;

  const SpectrumConfig& config() const { return config_; }

 private:
  int check_band(int b) const {
    GC_CHECK_MSG(b >= 0 && b < num_bands(), "bad band index " << b);
    return b;
  }
  int check_node(int n) const {
    GC_CHECK_MSG(n >= 0 && n < num_nodes(), "bad node index " << n);
    return n;
  }

  SpectrumConfig config_;
  std::vector<std::uint32_t> avail_;  // bitmask per node
  std::vector<double> bandwidth_hz_;  // current slot, indexed by band
};

}  // namespace gc::net
