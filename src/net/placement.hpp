// Procedural topology generators for the scenario subsystem
// (docs/SCENARIOS.md): base-station layouts beyond the paper's fixed 2-BS
// line, and user-placement point processes beyond uniform scatter.
//
// Everything here is a pure function of its parameters and the passed Rng,
// so generated topologies are bit-reproducible from the scenario seed and
// safe to rebuild identically on checkpoint resume.
#pragma once

#include <vector>

#include "net/topology.hpp"
#include "util/rng.hpp"

namespace gc::net {

// Hexagonal multi-cell grid: rows x cols base stations at hexagonal cell
// centers with center-to-center pitch sqrt(3) * cell_radius_m (adjacent
// hexagons of circumradius cell_radius_m touch). Odd rows are offset by
// half a pitch, the classic honeycomb.
struct HexGridParams {
  int rows = 2;
  int cols = 2;
  double cell_radius_m = 500.0;
};

// The cell centers, translated so the grid sits centered inside its
// bounding box [0, width] x [0, height] with a half-pitch margin on every
// side. `width_m`/`height_m` (optional) receive the bounding box, which is
// also the area users are placed in and mobility walks over.
std::vector<Vec2> hex_grid_centers(const HexGridParams& params,
                                   double* width_m = nullptr,
                                   double* height_m = nullptr);

// Uniform scatter: `count` points i.i.d. uniform over the box. Draw order
// is (x, y) per point, matching Topology::paper_layout's user placement.
std::vector<Vec2> place_uniform(int count, double width_m, double height_m,
                                Rng& rng);

// Homogeneous Poisson point process: N ~ Poisson(mean_count) points,
// uniform over the box (the standard conditional construction). The
// realized count varies with the seed; callers must cope with 0.
std::vector<Vec2> place_poisson(double mean_count, double width_m,
                                double height_m, Rng& rng);

// Clustered hotspots (Matern-style): `hotspots` cluster centers uniform
// over the box; each of the `count` points joins a random cluster with
// probability `cluster_fraction` (Gaussian offset of scale `sigma_m`,
// clamped to the box) and falls back to uniform background otherwise.
std::vector<Vec2> place_clustered(int count, int hotspots, double sigma_m,
                                  double cluster_fraction, double width_m,
                                  double height_m, Rng& rng);

}  // namespace gc::net
