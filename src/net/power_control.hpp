// Minimal-power assignment for a set of co-band links under the physical
// interference model (constraint (24)).
//
// The paper enforces (24) inside subproblem S4; we implement the classic
// Foschini–Miljanic fixed-point iteration
//   P_l <- Gamma * (eta*W + sum_{k != l} g(tx_k, rx_l) P_k) / g(tx_l, rx_l),
// started from zero. The iteration is monotone non-decreasing, so it
// converges to the component-wise minimal feasible power vector iff one
// exists; if any component needs more than the transmitter's maximum power,
// the set is infeasible and the caller deschedules a link.
#pragma once

#include <span>
#include <vector>

#include "net/capacity.hpp"
#include "net/topology.hpp"

namespace gc::net {

struct PowerControlOptions {
  int max_iterations = 500;
  double convergence_tol = 1e-9;  // relative change per component
};

struct PowerControlResult {
  bool feasible = false;
  // Minimal powers (W), aligned with the input links; meaningful only when
  // feasible.
  std::vector<double> powers_w;
  int iterations = 0;
  // When infeasible: index of a link whose power limit was exceeded (a
  // sensible victim for descheduling); -1 otherwise.
  int violating_link = -1;
};

struct CoBandLink {
  int tx = -1;
  int rx = -1;
  double max_power_w = 0.0;
};

PowerControlResult solve_min_powers(const Topology& topo,
                                    std::span<const CoBandLink> links,
                                    double bandwidth_hz,
                                    const RadioParams& radio,
                                    const PowerControlOptions& opt = {});

}  // namespace gc::net
