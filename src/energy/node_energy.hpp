// Per-node energy accounting of Sections II-C and III-B.
//
// E_i(t) = E_const + E_idle + E_TX(t)                      (eq. (2))
// E_TX(t) = sum over scheduled outgoing links of P_ij^m * dt
//         + sum over scheduled incoming links of P_recv * dt   (eq. (23))
#pragma once

#include "util/check.hpp"

namespace gc::energy {

struct NodeEnergyParams {
  double const_power_w = 0.0;  // antenna feed, E_const / dt
  double idle_power_w = 0.0;   // idle-mode draw, E_idle / dt
  double recv_power_w = 0.0;   // P_recv
  double max_tx_power_w = 0.0; // P_max

  void validate() const {
    GC_CHECK(const_power_w >= 0.0);
    GC_CHECK(idle_power_w >= 0.0);
    GC_CHECK(recv_power_w >= 0.0);
    GC_CHECK(max_tx_power_w > 0.0);
  }
};

// Baseline (traffic-independent) energy of one slot.
inline double baseline_energy_j(const NodeEnergyParams& p, double slot_seconds) {
  return (p.const_power_w + p.idle_power_w) * slot_seconds;
}

}  // namespace gc::energy
