// Energy generation cost of Section II-E.
//
// The provider pays f(P(t)) for the total grid energy P(t) drawn by its base
// stations in slot t, where f is non-negative, non-decreasing and convex.
// The paper's evaluation uses the quadratic f(P) = a P^2 + b P + c with
// a = 0.8, b = 0.2, c = 0.
#pragma once

#include "util/check.hpp"

namespace gc::energy {

class QuadraticCost {
 public:
  QuadraticCost(double a, double b, double c) : a_(a), b_(b), c_(c) {
    GC_CHECK_MSG(a >= 0.0, "f must be convex (a >= 0)");
    GC_CHECK_MSG(b >= 0.0 && c >= 0.0, "f must be non-negative/non-decreasing");
  }

  double value(double p) const {
    GC_CHECK(p >= -1e-9);
    return a_ * p * p + b_ * p + c_;
  }
  double derivative(double p) const { return 2.0 * a_ * p + b_; }

  // gamma_max of Section IV-B: the maximum of f' over the attainable grid
  // draws [0, p_total_max].
  double gamma_max(double p_total_max) const {
    GC_CHECK(p_total_max >= 0.0);
    return derivative(p_total_max);
  }

  // Inverse of f' (well-defined for a > 0); used by the price-based S4
  // solver. Requires marginal >= b.
  double inverse_derivative(double marginal) const {
    GC_CHECK(a_ > 0.0);
    GC_CHECK(marginal >= b_ - 1e-12);
    return (marginal - b_) / (2.0 * a_);
  }

  // The slot's effective tariff under a price-spike multiplier m >= 0
  // (fault injection): m * f keeps f's shape class, so every solver that
  // works on f works on the spiked tariff unchanged.
  QuadraticCost scaled(double m) const {
    GC_CHECK_MSG(m >= 0.0, "cost multiplier must be >= 0");
    return QuadraticCost(a_ * m, b_ * m, c_ * m);
  }

  double a() const { return a_; }
  double b() const { return b_; }
  double c() const { return c_; }

 private:
  double a_, b_, c_;
};

}  // namespace gc::energy
