#include "energy/battery.hpp"

#include <algorithm>

namespace gc::energy {

namespace {
// Decisions are produced by floating-point optimizers; tolerate roundoff at
// this scale when validating and clamp afterwards.
constexpr double kSlack = 1e-9;
}  // namespace

void BatteryParams::validate() const {
  GC_CHECK(capacity_j >= 0.0);
  GC_CHECK(max_charge_j >= 0.0);
  GC_CHECK(max_discharge_j >= 0.0);
  GC_CHECK_MSG(max_charge_j + max_discharge_j <= capacity_j + kSlack,
               "eq. (13) violated: c_max + d_max > x_max");
  GC_CHECK(initial_level_j >= 0.0 && initial_level_j <= capacity_j);
}

Battery::Battery(const BatteryParams& params)
    : params_(params),
      original_limits_{params.max_charge_j, params.max_discharge_j},
      level_(params.initial_level_j) {
  params_.validate();
}

double Battery::set_capacity_j(double capacity_j) {
  GC_CHECK(capacity_j >= 0.0);
  // Keep (13): scale the per-slot limits with the capacity, never above
  // what the battery was built with.
  const double limit_sum = original_limits_[0] + original_limits_[1];
  const double scale =
      limit_sum > 0.0 ? std::min(1.0, capacity_j / limit_sum) : 0.0;
  params_.capacity_j = capacity_j;
  params_.max_charge_j = original_limits_[0] * scale;
  params_.max_discharge_j = original_limits_[1] * scale;
  const double before = level_;
  level_ = std::clamp(level_, 0.0, capacity_j);
  params_.initial_level_j = std::min(params_.initial_level_j, capacity_j);
  params_.validate();
  return before - level_;
}

void Battery::set_level_j(double level_j) {
  GC_CHECK_MSG(level_j >= 0.0 && level_j <= params_.capacity_j + kSlack,
               "battery level " << level_j << " outside [0, "
                                << params_.capacity_j << "]");
  level_ = std::clamp(level_j, 0.0, params_.capacity_j);
}

double Battery::charge_headroom_j() const {
  return std::min(params_.max_charge_j, params_.capacity_j - level_);
}

double Battery::discharge_headroom_j() const {
  return std::min(params_.max_discharge_j, level_);
}

void Battery::apply(double charge_j, double discharge_j) {
  GC_CHECK(charge_j >= -kSlack && discharge_j >= -kSlack);
  charge_j = std::max(charge_j, 0.0);
  discharge_j = std::max(discharge_j, 0.0);
  const double scale = std::max({1.0, params_.capacity_j, charge_j, discharge_j});
  // Optimizer outputs may carry sub-tolerance residue on the zero side of
  // eq. (9); snap it away rather than reject the slot.
  if (charge_j <= kSlack * scale) charge_j = 0.0;
  if (discharge_j <= kSlack * scale) discharge_j = 0.0;
  GC_CHECK_MSG(charge_j == 0.0 || discharge_j == 0.0,
               "eq. (9) violated: charge and discharge in the same slot");
  GC_CHECK_MSG(charge_j <= charge_headroom_j() + kSlack * scale,
               "eq. (11) violated: charge " << charge_j << " > headroom "
                                            << charge_headroom_j());
  GC_CHECK_MSG(discharge_j <= discharge_headroom_j() + kSlack * scale,
               "eq. (12) violated: discharge "
                   << discharge_j << " > headroom " << discharge_headroom_j());
  level_ += charge_j - discharge_j;
  level_ = std::clamp(level_, 0.0, params_.capacity_j);
}

}  // namespace gc::energy
