// Energy storage unit of Section II-D.
//
// The battery is an energy queue (eq. (4)) with level x in [0, x_max]
// (eq. (10)), per-slot charge/discharge limits c_max / d_max (eqs. (11),
// (12)) whose sum must fit in the capacity (eq. (13)), and the efficiency
// rule (9): never charge and discharge in the same slot.
//
// Energy is measured in joules throughout the library.
#pragma once

#include "util/check.hpp"

namespace gc::energy {

struct BatteryParams {
  double capacity_j = 0.0;        // x_max
  double max_charge_j = 0.0;      // c_max per slot
  double max_discharge_j = 0.0;   // d_max per slot
  double initial_level_j = 0.0;   // x(0)

  void validate() const;
};

class Battery {
 public:
  explicit Battery(const BatteryParams& params);

  double level_j() const { return level_; }
  const BatteryParams& params() const { return params_; }

  // Largest admissible charge this slot: min(c_max, x_max - x) (eq. (11)).
  double charge_headroom_j() const;
  // Largest admissible discharge this slot: min(d_max, x) (eq. (12)).
  double discharge_headroom_j() const;

  // Applies one slot's decision (eq. (4): x <- x + c - d). Enforces (9)
  // (charge XOR discharge), (11) and (12); throws CheckError on violation.
  void apply(double charge_j, double discharge_j);

  // Capacity fade (fault injection): shrinks x_max to `capacity_j`,
  // rescaling c_max / d_max proportionally so eq. (13) keeps holding and
  // clamping the stored level into the new range. Returns the joules lost
  // to the clamp. Growing capacity back is allowed (repair scenarios) but
  // the per-slot limits never exceed their construction-time values.
  double set_capacity_j(double capacity_j);

  // Checkpoint support: reinstate the stored level exactly (must lie in
  // [0, capacity]).
  void set_level_j(double level_j);

 private:
  BatteryParams params_;
  double original_limits_[2];  // construction-time {c_max, d_max}
  double level_;
};

}  // namespace gc::energy
