// Time-varying electricity tariffs (extension; the paper's f is static).
//
// A tariff is a cyclic vector of positive multipliers applied to the cost
// function: slot t pays m_{t mod N} * f(P). The Lyapunov machinery carries
// over by defining gamma_max with the *maximum* multiplier (the z-shift
// must upper-bound f' over every slot); the algorithm then performs
// battery arbitrage on its own — the charge threshold
// x < V (gamma_max - m_t f'(P)) is high when energy is cheap and low when
// it is expensive (see examples/tariff_arbitrage.cpp).
#pragma once

#include <vector>

#include "util/check.hpp"

namespace gc::energy {

// A flat tariff (multiplier 1 everywhere) is the empty vector by
// convention; these helpers build common shapes.

// Time-of-use: `peak_mult` between [peak_begin, peak_end) slots of each
// day, `offpeak_mult` elsewhere.
inline std::vector<double> time_of_use_tariff(int slots_per_day,
                                              int peak_begin, int peak_end,
                                              double peak_mult,
                                              double offpeak_mult) {
  GC_CHECK(slots_per_day >= 1);
  GC_CHECK(0 <= peak_begin && peak_begin <= peak_end &&
           peak_end <= slots_per_day);
  GC_CHECK(peak_mult > 0.0 && offpeak_mult > 0.0);
  std::vector<double> out(static_cast<std::size_t>(slots_per_day),
                          offpeak_mult);
  for (int t = peak_begin; t < peak_end; ++t) out[t] = peak_mult;
  return out;
}

}  // namespace gc::energy
