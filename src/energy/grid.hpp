// Grid connectivity of Sections II-D/E.
//
// omega_i(t) (eq. (6)): base stations are always connected to the power
// grid; a mobile user is connected only occasionally, modelled by an i.i.d.
// Bernoulli process xi_i(t). A connected node can draw at most p_i^max
// energy from the grid per slot (eq. (14)), split between serving demand
// (g_i) and charging the battery (c_i^g). Only base-station draws count
// toward the provider's bill P(t).
#pragma once

#include "util/check.hpp"
#include "util/rng.hpp"

namespace gc::energy {

struct GridParams {
  bool always_connected = false;   // true for base stations
  double connect_probability = 0.0;  // xi for users
  double max_draw_j = 0.0;           // p_i^max per slot

  void validate() const {
    GC_CHECK(connect_probability >= 0.0 && connect_probability <= 1.0);
    GC_CHECK(max_draw_j >= 0.0);
  }
};

class GridConnection {
 public:
  explicit GridConnection(const GridParams& params) : params_(params) {
    params_.validate();
  }

  // omega_i(t) for this slot.
  bool sample_connected(Rng& rng) const {
    return params_.always_connected || rng.bernoulli(params_.connect_probability);
  }

  double max_draw_j() const { return params_.max_draw_j; }
  const GridParams& params() const { return params_; }

 private:
  GridParams params_;
};

}  // namespace gc::energy
