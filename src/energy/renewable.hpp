// Renewable generation models of Section II-D.
//
// The paper models each node's renewable output R_i(t) as an i.i.d. process
// with 0 <= R_i(t) <= R_i^max (uniform in the evaluation: U[0,1] W for
// users, U[0,15] W for base stations). A diurnal solar model is provided
// for the example applications; it still satisfies the boundedness
// assumption the analysis needs.
#pragma once

#include <cmath>
#include <memory>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace gc::energy {

class RenewableModel {
 public:
  virtual ~RenewableModel() = default;
  // Energy harvested during slot `t` (joules).
  virtual double sample_j(int slot, Rng& rng) const = 0;
  // Upper bound R_max * dt (joules) used by the analysis constants.
  virtual double max_j() const = 0;
};

// R_i(t) ~ U[0, peak_w] * dt, the paper's evaluation model.
class UniformRenewable final : public RenewableModel {
 public:
  UniformRenewable(double peak_w, double slot_seconds)
      : peak_j_(peak_w * slot_seconds) {
    GC_CHECK(peak_w >= 0.0 && slot_seconds > 0.0);
  }
  double sample_j(int /*slot*/, Rng& rng) const override {
    return rng.uniform(0.0, peak_j_);
  }
  double max_j() const override { return peak_j_; }

 private:
  double peak_j_;
};

// No renewable source (the "w/o renewable energy" baselines of Fig. 2(f)).
class NoRenewable final : public RenewableModel {
 public:
  double sample_j(int, Rng&) const override { return 0.0; }
  double max_j() const override { return 0.0; }
};

// Solar panel with a day/night cycle: clear-sky half-sine profile scaled by
// a random cloudiness factor in [clearness_lo, 1]. Used by the
// campus-microgrid example.
class SolarRenewable final : public RenewableModel {
 public:
  SolarRenewable(double peak_w, double slot_seconds, int slots_per_day,
                 double clearness_lo = 0.3)
      : peak_j_(peak_w * slot_seconds),
        slots_per_day_(slots_per_day),
        clearness_lo_(clearness_lo) {
    GC_CHECK(peak_w >= 0.0 && slot_seconds > 0.0);
    GC_CHECK(slots_per_day >= 2);
    GC_CHECK(clearness_lo >= 0.0 && clearness_lo <= 1.0);
  }
  double sample_j(int slot, Rng& rng) const override {
    const double phase =
        static_cast<double>(slot % slots_per_day_) / slots_per_day_;
    // Daylight during the middle half of the day.
    const double sun = phase < 0.25 || phase > 0.75
                           ? 0.0
                           : std::sin((phase - 0.25) * 2.0 * M_PI);
    const double clearness = rng.uniform(clearness_lo_, 1.0);
    return peak_j_ * sun * clearness;
  }
  double max_j() const override { return peak_j_; }

 private:
  double peak_j_;
  int slots_per_day_;
  double clearness_lo_;
};

// Wind turbine: wind speed drawn i.i.d. per slot from a Weibull(shape)
// distribution (scale normalized so the rated speed is `rated_speed_ratio`
// scale units), mapped through the standard cubic power curve and clipped
// at the rated output. Bounded by peak_w * dt, so the analysis constants
// (Section II-D) carry over unchanged.
class WindRenewable final : public RenewableModel {
 public:
  WindRenewable(double peak_w, double slot_seconds, double weibull_shape = 2.0,
                double rated_speed_ratio = 1.5)
      : peak_j_(peak_w * slot_seconds),
        shape_(weibull_shape),
        rated_(rated_speed_ratio) {
    GC_CHECK(peak_w >= 0.0 && slot_seconds > 0.0);
    GC_CHECK(weibull_shape > 0.0);
    GC_CHECK(rated_speed_ratio > 0.0);
  }
  double sample_j(int /*slot*/, Rng& rng) const override {
    // Inverse-transform Weibull draw with unit scale.
    const double u = rng.uniform01();
    const double speed = std::pow(-std::log(1.0 - u), 1.0 / shape_);
    const double frac = std::min(1.0, std::pow(speed / rated_, 3.0));
    return peak_j_ * frac;
  }
  double max_j() const override { return peak_j_; }

 private:
  double peak_j_;
  double shape_;
  double rated_;
};

}  // namespace gc::energy
