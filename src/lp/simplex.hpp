// Two-phase primal simplex for bounded-variable linear programs.
//
// Method: rows are converted to equalities with slack variables; an
// artificial variable per row forms the initial basis. Phase I minimizes the
// sum of artificials (infeasibility); phase II minimizes the caller's
// objective with the artificials pinned to zero. Nonbasic variables rest at
// a finite bound; the dense tableau (B^-1 A, augmented with B^-1 b) is
// updated by elementary row operations per pivot, with periodic
// recomputation of basic values to control drift.
//
// Pricing is Dantzig (most negative reduced cost) with a permanent switch to
// Bland's rule after a stall, which guarantees termination on degenerate
// problems.
//
// Scale: designed for the dense mid-size LPs this project produces (a few
// thousand columns, a few hundred rows), where a dense tableau beats sparse
// bookkeeping.
#pragma once

#include <vector>

#include "lp/model.hpp"

namespace gc::lp {

enum class Status {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
  // Watchdog outcomes (fault tolerance; see docs/ROBUSTNESS.md): the solve
  // exceeded its wall-clock budget, or the tableau degenerated into NaN /
  // infinity. Callers treat both like IterationLimit: no usable solution.
  TimeLimit,
  NumericalError,
};

const char* to_string(Status s);

struct Options {
  int max_iterations = 200000;
  // Wall-clock budget per solve in seconds; 0 (the default) = unlimited.
  // Checked every few pivots, so the overshoot is bounded by a handful of
  // iterations. Exceeding it returns Status::TimeLimit.
  double max_seconds = 0.0;
  // Feasibility tolerance on bounds / rows (absolute, relative to the
  // problem's magnitude which callers keep O(1)..O(1e6)).
  double feas_tol = 1e-7;
  // Reduced-cost optimality tolerance.
  double opt_tol = 1e-7;
  // Minimum |pivot| accepted.
  double pivot_tol = 1e-9;
  // Iterations without objective improvement before switching to Bland.
  int stall_limit = 200;
  // Recompute basic values from the tableau every this many pivots.
  int refresh_every = 128;
};

struct Solution {
  Status status = Status::IterationLimit;
  double objective = 0.0;
  std::vector<double> x;  // structural variables only
  int iterations = 0;
  // Residual infeasibility the solver itself measured (phase I objective).
  double infeasibility = 0.0;
};

Solution solve(const Model& model, const Options& options = {});

}  // namespace gc::lp
