// Two-phase primal simplex for bounded-variable linear programs.
//
// Method: rows are converted to equalities with slack variables; an
// artificial variable per row forms the initial basis. Phase I minimizes the
// sum of artificials (infeasibility); phase II minimizes the caller's
// objective with the artificials pinned to zero. Nonbasic variables rest at
// a finite bound; the dense tableau (B^-1 A, augmented with B^-1 b) is
// updated by elementary row operations per pivot, with periodic
// recomputation of basic values to control drift.
//
// Pricing is Dantzig (most negative reduced cost) with a permanent switch to
// Bland's rule after a stall, which guarantees termination on degenerate
// problems.
//
// Storage: the solver is one driver over two interchangeable tableau
// storages. The dense storage (row-major array) wins on the small LPs the
// paper topology produces; the sparse storage (per-row sorted column/value
// entry lists) wins once the tableau grows past ~10^5 cells with low fill,
// which is exactly what the block-structured S1/S4 LPs of 500+-node
// scenarios look like. Options::sparse selects the storage (Auto picks by
// size and nonzero density). Both storages expose the same nonzero
// sequences in the same order to the driver, so the pivot sequence — and
// therefore every status, objective and solution — is bit-identical
// between them; the choice affects speed only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "lp/model.hpp"

namespace gc::lp {

enum class Status {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
  // Watchdog outcomes (fault tolerance; see docs/ROBUSTNESS.md): the solve
  // exceeded its wall-clock budget, or the tableau degenerated into NaN /
  // infinity. Callers treat both like IterationLimit: no usable solution.
  TimeLimit,
  NumericalError,
};

const char* to_string(Status s);

// Tableau storage selection (see the header comment): Auto decides per
// solve from the posed problem's size and density, Force always uses the
// sparse storage, Never always uses the dense one. Purely a speed choice —
// results are bit-identical either way.
enum class SparseMode { Auto, Force, Never };

struct Options {
  int max_iterations = 200000;
  // Wall-clock budget per solve in seconds; 0 (the default) = unlimited.
  // Checked every few pivots, so the overshoot is bounded by a handful of
  // iterations. Exceeding it returns Status::TimeLimit.
  double max_seconds = 0.0;
  // Feasibility tolerance on bounds / rows (absolute, relative to the
  // problem's magnitude which callers keep O(1)..O(1e6)).
  double feas_tol = 1e-7;
  // Reduced-cost optimality tolerance.
  double opt_tol = 1e-7;
  // Minimum |pivot| accepted.
  double pivot_tol = 1e-9;
  // Iterations without objective improvement before switching to Bland.
  int stall_limit = 200;
  // Recompute basic values from the tableau every this many pivots.
  int refresh_every = 128;
  // Tableau storage (docs/PERFORMANCE.md "Scaling past 500 nodes"). Auto
  // uses the sparse storage when the dense tableau would hold at least
  // `sparse_min_cells` cells AND the structural coefficient density
  // (nonzeros / (rows x cols)) is at most `sparse_max_density`; the
  // thresholds keep every paper-scale LP on the dense fast path.
  SparseMode sparse = SparseMode::Auto;
  std::int64_t sparse_min_cells = 1 << 18;
  double sparse_max_density = 0.02;
};

struct Solution {
  Status status = Status::IterationLimit;
  double objective = 0.0;
  std::vector<double> x;  // structural variables only
  int iterations = 0;
  // Residual infeasibility the solver itself measured (phase I objective).
  double infeasibility = 0.0;
};

// Per-solve introspection record, filled by every solve (workspace or not)
// and kept in Workspace::last_stats(). Collection is a handful of integer
// increments inside loops that already do O(rows*cols) arithmetic, so it is
// always on — only the lp.* registry instruments are compiled out under
// GC_OBS_DISABLE. Purely observational: nothing here feeds back into the
// solve, so results are bit-identical with or without a sink attached.
struct SolveStats {
  // Problem dimensions as the caller posed them (structural variables;
  // slacks/artificials excluded).
  int rows = 0;
  int cols = 0;
  int nonzeros = 0;  // coefficient entries across all rows

  // Work split by phase (phase I drives artificials out, phase II optimizes
  // the caller's objective). iterations = pivots + bound flips.
  int phase1_iterations = 0;
  int phase2_iterations = 0;
  int pivots = 0;
  // Pivots that moved the entering variable by (numerically) zero — the
  // degeneracy that makes dense simplex stall on big scheduling LPs.
  int degenerate_pivots = 0;
  int bound_flips = 0;
  int refactorizations = 0;  // periodic basic-value recomputations
  bool bland = false;        // the stall guard switched to Bland's rule

  // Warm start (see Workspace): attempted = a hint was pending when the
  // solve began; reused = how many structural variables actually rested at
  // a bound state carried over from the previous solve.
  bool warm_attempted = false;
  int warm_vars_reused = 0;

  // Numeric-repair events: end-of-solve bound clamps that moved a value by
  // more than drift noise, plus NaN/inf detections (each also surfaces as
  // Status::NumericalError).
  int numeric_repairs = 0;

  // Storage the solve actually ran on (Options::sparse selection) and the
  // tableau's nonzero entry count when the solve ended. For the sparse
  // storage fill_nonzeros measures fill-in (entries created by pivoting);
  // fill_nonzeros << rows x cols is why the sparse engine wins.
  bool sparse = false;
  std::int64_t fill_nonzeros = 0;

  // The warm hint consumed by this solve was marked cross-slot (carried
  // from the previous slot's solve of the same subproblem rather than from
  // the same slot's sequential-fix series). See Workspace::set_warm_start.
  bool warm_cross_slot = false;

  double wall_s = 0.0;
  Status status = Status::IterationLimit;
};

// Receiver for per-solve statistics (e.g. lp::JsonlSolveLog). `context` is
// the call-site label the owning Workspace carries ("s1", "s3", "s4", or ""
// for unlabeled workspaces). Implementations must be safe to share across
// threads if the workspace owners run concurrently.
class SolveStatsSink {
 public:
  virtual ~SolveStatsSink() = default;
  virtual void on_solve(const SolveStats& stats, const char* context) = 0;
  // The controller announces the slot it is about to solve for, so sinks
  // can stamp records with it (JsonlSolveLog's "slot" field) and resume
  // logic can truncate a crashed run's log back to a slot boundary.
  virtual void begin_slot(int /*slot*/) {}
  // Durability point: flush buffered lines to stable storage. Called at
  // every checkpoint boundary so log tails survive a SIGKILL.
  virtual void flush() {}
};

// Where a variable rests between pivots. Exposed (rather than kept private
// to the solver) because the Workspace records the structural variables'
// final states for warm starts.
enum class VarState : std::uint8_t { AtLower, AtUpper, Basic };

// Caller-owned, reusable solver state.
//
// The tableau, bounds, cost, basis and scratch vectors live here and are
// resized (std::vector::assign — capacity is kept) instead of freshly
// allocated on every solve. A controller that issues thousands of mid-size
// LPs per run (the S1 sequential-fix series, S3, S4) holds one Workspace
// per call site and amortizes all per-solve allocation away after the first
// slot. A Workspace must not be shared between concurrent solves; one per
// thread/controller is the intended shape.
//
// Warm start: after every solve the workspace remembers each structural
// variable's final VarState. A caller whose next model reuses (a subset
// of) the previous model's variables can pass that correspondence through
// set_warm_start(); the next solve then starts mapped nonbasic variables at
// their previous bound instead of the default lower bound, which makes the
// initial artificial basis nearly feasible and collapses phase I. The hint
// is one-shot (cleared by the solve that consumes it) and purely a
// starting-point change — the solver still proves optimality from scratch,
// so statuses and objective values are unaffected; only the vertex reached
// among ties and the iteration count may differ.
struct DenseTableau;
struct SparseTableau;
struct WorkspaceHooks;
template <class Tableau> class SimplexEngineT;

class Workspace {
 public:
  // `map[j]` = index of the variable in the PREVIOUS solve that variable j
  // of the NEXT model corresponds to, or -1 for a brand-new variable. The
  // map's size must equal the next model's variable count. `cross_slot`
  // tags the hint as carried across a slot boundary (rather than within a
  // slot's solve series) so SolveStats and the lp.warmstart_cross_slot_*
  // instruments can account for it separately; it does not change solver
  // behavior.
  void set_warm_start(std::vector<int> map, bool cross_slot = false) {
    warm_map_ = std::move(map);
    warm_cross_slot_ = cross_slot;
  }

  // Drops the recorded states and any pending hint (buffers keep their
  // capacity). Use when switching the workspace to an unrelated model
  // family mid-stream; not needed otherwise — without set_warm_start the
  // recorded states are inert.
  void clear_warm_start() {
    warm_map_.clear();
    prev_struct_state_.clear();
    warm_cross_slot_ = false;
  }

  // Cross-slot warm-start carry (ControllerOptions::warm_across_slots;
  // sim/checkpoint.cpp). The recorded structural states from the most
  // recent solve, exported as raw bytes for checkpointing and re-imported
  // on resume, so a resumed run feeds the exact same warm hints to its
  // first slot that the uninterrupted run would have — replay stays
  // bit-identical. The encoding is VarState's underlying byte.
  std::vector<std::uint8_t> export_recorded_states() const {
    std::vector<std::uint8_t> out(prev_struct_state_.size());
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] = static_cast<std::uint8_t>(prev_struct_state_[i]);
    return out;
  }
  void import_recorded_states(const std::vector<std::uint8_t>& states) {
    prev_struct_state_.resize(states.size());
    for (std::size_t i = 0; i < states.size(); ++i)
      prev_struct_state_[i] = static_cast<VarState>(states[i]);
  }

  // Introspection (docs/PERFORMANCE.md "Profiling workflow"): the most
  // recent solve's statistics, refreshed by every solve through this
  // workspace.
  const SolveStats& last_stats() const { return last_stats_; }

  // Labels this workspace's solves for sinks and logs (one workspace per
  // LP-backed subproblem is the intended shape, so the label doubles as
  // the solve class: "s1", "s3", "s4"). Must outlive the workspace; use
  // string literals.
  void set_stats_context(const char* context) { stats_context_ = context; }
  const char* stats_context() const { return stats_context_; }

  // Streams every solve's SolveStats to `sink` (nullptr detaches). The
  // sink observes only; solver results are unaffected.
  void set_stats_sink(SolveStatsSink* sink) { stats_sink_ = sink; }

 private:
  template <class Tableau> friend class SimplexEngineT;
  friend struct DenseTableau;
  friend struct SparseTableau;
  friend struct WorkspaceHooks;
  std::vector<double> tab_, lo_, hi_, cost_, xb_, dscratch_;
  std::vector<VarState> state_;
  std::vector<int> basis_;
  // Sparse-storage buffers (SimplexEngineT<SparseTableau>): per-row sorted
  // (column, value) entry lists, the rhs column, and a merge scratch row.
  std::vector<std::vector<std::pair<int, double>>> sp_rows_;
  std::vector<double> sp_rhs_;
  std::vector<std::pair<int, double>> sp_merge_;
  // Entering-column cache shared by both storages: gathered once per
  // iteration, it serves the ratio test, bound flips, basic-value updates
  // and the pivot's row eliminations.
  std::vector<std::pair<int, double>> colbuf_;
  // Structural-variable states after the most recent solve + the pending
  // one-shot correspondence hint.
  std::vector<VarState> prev_struct_state_;
  std::vector<int> warm_map_;
  bool warm_cross_slot_ = false;
  // Introspection state (observation only).
  SolveStats last_stats_;
  const char* stats_context_ = "";
  SolveStatsSink* stats_sink_ = nullptr;
};

Solution solve(const Model& model, const Options& options = {});

// Same solver, but all working memory lives in (and persists through)
// `workspace`. Results are identical to the workspace-free overload unless
// a warm-start hint is pending (see Workspace).
Solution solve(const Model& model, const Options& options,
               Workspace& workspace);

}  // namespace gc::lp
