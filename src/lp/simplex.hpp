// Two-phase primal simplex for bounded-variable linear programs.
//
// Method: rows are converted to equalities with slack variables; an
// artificial variable per row forms the initial basis. Phase I minimizes the
// sum of artificials (infeasibility); phase II minimizes the caller's
// objective with the artificials pinned to zero. Nonbasic variables rest at
// a finite bound; the dense tableau (B^-1 A, augmented with B^-1 b) is
// updated by elementary row operations per pivot, with periodic
// recomputation of basic values to control drift.
//
// Pricing is Dantzig (most negative reduced cost) with a permanent switch to
// Bland's rule after a stall, which guarantees termination on degenerate
// problems.
//
// Scale: designed for the dense mid-size LPs this project produces (a few
// thousand columns, a few hundred rows), where a dense tableau beats sparse
// bookkeeping.
#pragma once

#include <cstdint>
#include <vector>

#include "lp/model.hpp"

namespace gc::lp {

enum class Status {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
  // Watchdog outcomes (fault tolerance; see docs/ROBUSTNESS.md): the solve
  // exceeded its wall-clock budget, or the tableau degenerated into NaN /
  // infinity. Callers treat both like IterationLimit: no usable solution.
  TimeLimit,
  NumericalError,
};

const char* to_string(Status s);

struct Options {
  int max_iterations = 200000;
  // Wall-clock budget per solve in seconds; 0 (the default) = unlimited.
  // Checked every few pivots, so the overshoot is bounded by a handful of
  // iterations. Exceeding it returns Status::TimeLimit.
  double max_seconds = 0.0;
  // Feasibility tolerance on bounds / rows (absolute, relative to the
  // problem's magnitude which callers keep O(1)..O(1e6)).
  double feas_tol = 1e-7;
  // Reduced-cost optimality tolerance.
  double opt_tol = 1e-7;
  // Minimum |pivot| accepted.
  double pivot_tol = 1e-9;
  // Iterations without objective improvement before switching to Bland.
  int stall_limit = 200;
  // Recompute basic values from the tableau every this many pivots.
  int refresh_every = 128;
};

struct Solution {
  Status status = Status::IterationLimit;
  double objective = 0.0;
  std::vector<double> x;  // structural variables only
  int iterations = 0;
  // Residual infeasibility the solver itself measured (phase I objective).
  double infeasibility = 0.0;
};

// Per-solve introspection record, filled by every solve (workspace or not)
// and kept in Workspace::last_stats(). Collection is a handful of integer
// increments inside loops that already do O(rows*cols) arithmetic, so it is
// always on — only the lp.* registry instruments are compiled out under
// GC_OBS_DISABLE. Purely observational: nothing here feeds back into the
// solve, so results are bit-identical with or without a sink attached.
struct SolveStats {
  // Problem dimensions as the caller posed them (structural variables;
  // slacks/artificials excluded).
  int rows = 0;
  int cols = 0;
  int nonzeros = 0;  // coefficient entries across all rows

  // Work split by phase (phase I drives artificials out, phase II optimizes
  // the caller's objective). iterations = pivots + bound flips.
  int phase1_iterations = 0;
  int phase2_iterations = 0;
  int pivots = 0;
  // Pivots that moved the entering variable by (numerically) zero — the
  // degeneracy that makes dense simplex stall on big scheduling LPs.
  int degenerate_pivots = 0;
  int bound_flips = 0;
  int refactorizations = 0;  // periodic basic-value recomputations
  bool bland = false;        // the stall guard switched to Bland's rule

  // Warm start (see Workspace): attempted = a hint was pending when the
  // solve began; reused = how many structural variables actually rested at
  // a bound state carried over from the previous solve.
  bool warm_attempted = false;
  int warm_vars_reused = 0;

  // Numeric-repair events: end-of-solve bound clamps that moved a value by
  // more than drift noise, plus NaN/inf detections (each also surfaces as
  // Status::NumericalError).
  int numeric_repairs = 0;

  double wall_s = 0.0;
  Status status = Status::IterationLimit;
};

// Receiver for per-solve statistics (e.g. lp::JsonlSolveLog). `context` is
// the call-site label the owning Workspace carries ("s1", "s3", "s4", or ""
// for unlabeled workspaces). Implementations must be safe to share across
// threads if the workspace owners run concurrently.
class SolveStatsSink {
 public:
  virtual ~SolveStatsSink() = default;
  virtual void on_solve(const SolveStats& stats, const char* context) = 0;
  // The controller announces the slot it is about to solve for, so sinks
  // can stamp records with it (JsonlSolveLog's "slot" field) and resume
  // logic can truncate a crashed run's log back to a slot boundary.
  virtual void begin_slot(int /*slot*/) {}
  // Durability point: flush buffered lines to stable storage. Called at
  // every checkpoint boundary so log tails survive a SIGKILL.
  virtual void flush() {}
};

// Where a variable rests between pivots. Exposed (rather than kept private
// to the solver) because the Workspace records the structural variables'
// final states for warm starts.
enum class VarState : std::uint8_t { AtLower, AtUpper, Basic };

// Caller-owned, reusable solver state.
//
// The tableau, bounds, cost, basis and scratch vectors live here and are
// resized (std::vector::assign — capacity is kept) instead of freshly
// allocated on every solve. A controller that issues thousands of mid-size
// LPs per run (the S1 sequential-fix series, S3, S4) holds one Workspace
// per call site and amortizes all per-solve allocation away after the first
// slot. A Workspace must not be shared between concurrent solves; one per
// thread/controller is the intended shape.
//
// Warm start: after every solve the workspace remembers each structural
// variable's final VarState. A caller whose next model reuses (a subset
// of) the previous model's variables can pass that correspondence through
// set_warm_start(); the next solve then starts mapped nonbasic variables at
// their previous bound instead of the default lower bound, which makes the
// initial artificial basis nearly feasible and collapses phase I. The hint
// is one-shot (cleared by the solve that consumes it) and purely a
// starting-point change — the solver still proves optimality from scratch,
// so statuses and objective values are unaffected; only the vertex reached
// among ties and the iteration count may differ.
class Workspace {
 public:
  // `map[j]` = index of the variable in the PREVIOUS solve that variable j
  // of the NEXT model corresponds to, or -1 for a brand-new variable. The
  // map's size must equal the next model's variable count.
  void set_warm_start(std::vector<int> map) { warm_map_ = std::move(map); }

  // Drops the recorded states and any pending hint (buffers keep their
  // capacity). Use when switching the workspace to an unrelated model
  // family mid-stream; not needed otherwise — without set_warm_start the
  // recorded states are inert.
  void clear_warm_start() {
    warm_map_.clear();
    prev_struct_state_.clear();
  }

  // Introspection (docs/PERFORMANCE.md "Profiling workflow"): the most
  // recent solve's statistics, refreshed by every solve through this
  // workspace.
  const SolveStats& last_stats() const { return last_stats_; }

  // Labels this workspace's solves for sinks and logs (one workspace per
  // LP-backed subproblem is the intended shape, so the label doubles as
  // the solve class: "s1", "s3", "s4"). Must outlive the workspace; use
  // string literals.
  void set_stats_context(const char* context) { stats_context_ = context; }
  const char* stats_context() const { return stats_context_; }

  // Streams every solve's SolveStats to `sink` (nullptr detaches). The
  // sink observes only; solver results are unaffected.
  void set_stats_sink(SolveStatsSink* sink) { stats_sink_ = sink; }

 private:
  friend class SimplexEngine;
  std::vector<double> tab_, lo_, hi_, cost_, xb_, dscratch_;
  std::vector<VarState> state_;
  std::vector<int> basis_;
  // Structural-variable states after the most recent solve + the pending
  // one-shot correspondence hint.
  std::vector<VarState> prev_struct_state_;
  std::vector<int> warm_map_;
  // Introspection state (observation only).
  SolveStats last_stats_;
  const char* stats_context_ = "";
  SolveStatsSink* stats_sink_ = nullptr;
};

Solution solve(const Model& model, const Options& options = {});

// Same solver, but all working memory lives in (and persists through)
// `workspace`. Results are identical to the workspace-free overload unless
// a warm-start hint is pending (see Workspace).
Solution solve(const Model& model, const Options& options,
               Workspace& workspace);

}  // namespace gc::lp
