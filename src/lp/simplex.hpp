// Two-phase primal simplex for bounded-variable linear programs.
//
// Method: rows are converted to equalities with slack variables; an
// artificial variable per row forms the initial basis. Phase I minimizes the
// sum of artificials (infeasibility); phase II minimizes the caller's
// objective with the artificials pinned to zero. Nonbasic variables rest at
// a finite bound; the dense tableau (B^-1 A, augmented with B^-1 b) is
// updated by elementary row operations per pivot, with periodic
// recomputation of basic values to control drift.
//
// Pricing is Dantzig (most negative reduced cost) with a permanent switch to
// Bland's rule after a stall, which guarantees termination on degenerate
// problems.
//
// Scale: designed for the dense mid-size LPs this project produces (a few
// thousand columns, a few hundred rows), where a dense tableau beats sparse
// bookkeeping.
#pragma once

#include <cstdint>
#include <vector>

#include "lp/model.hpp"

namespace gc::lp {

enum class Status {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
  // Watchdog outcomes (fault tolerance; see docs/ROBUSTNESS.md): the solve
  // exceeded its wall-clock budget, or the tableau degenerated into NaN /
  // infinity. Callers treat both like IterationLimit: no usable solution.
  TimeLimit,
  NumericalError,
};

const char* to_string(Status s);

struct Options {
  int max_iterations = 200000;
  // Wall-clock budget per solve in seconds; 0 (the default) = unlimited.
  // Checked every few pivots, so the overshoot is bounded by a handful of
  // iterations. Exceeding it returns Status::TimeLimit.
  double max_seconds = 0.0;
  // Feasibility tolerance on bounds / rows (absolute, relative to the
  // problem's magnitude which callers keep O(1)..O(1e6)).
  double feas_tol = 1e-7;
  // Reduced-cost optimality tolerance.
  double opt_tol = 1e-7;
  // Minimum |pivot| accepted.
  double pivot_tol = 1e-9;
  // Iterations without objective improvement before switching to Bland.
  int stall_limit = 200;
  // Recompute basic values from the tableau every this many pivots.
  int refresh_every = 128;
};

struct Solution {
  Status status = Status::IterationLimit;
  double objective = 0.0;
  std::vector<double> x;  // structural variables only
  int iterations = 0;
  // Residual infeasibility the solver itself measured (phase I objective).
  double infeasibility = 0.0;
};

// Where a variable rests between pivots. Exposed (rather than kept private
// to the solver) because the Workspace records the structural variables'
// final states for warm starts.
enum class VarState : std::uint8_t { AtLower, AtUpper, Basic };

// Caller-owned, reusable solver state.
//
// The tableau, bounds, cost, basis and scratch vectors live here and are
// resized (std::vector::assign — capacity is kept) instead of freshly
// allocated on every solve. A controller that issues thousands of mid-size
// LPs per run (the S1 sequential-fix series, S3, S4) holds one Workspace
// per call site and amortizes all per-solve allocation away after the first
// slot. A Workspace must not be shared between concurrent solves; one per
// thread/controller is the intended shape.
//
// Warm start: after every solve the workspace remembers each structural
// variable's final VarState. A caller whose next model reuses (a subset
// of) the previous model's variables can pass that correspondence through
// set_warm_start(); the next solve then starts mapped nonbasic variables at
// their previous bound instead of the default lower bound, which makes the
// initial artificial basis nearly feasible and collapses phase I. The hint
// is one-shot (cleared by the solve that consumes it) and purely a
// starting-point change — the solver still proves optimality from scratch,
// so statuses and objective values are unaffected; only the vertex reached
// among ties and the iteration count may differ.
class Workspace {
 public:
  // `map[j]` = index of the variable in the PREVIOUS solve that variable j
  // of the NEXT model corresponds to, or -1 for a brand-new variable. The
  // map's size must equal the next model's variable count.
  void set_warm_start(std::vector<int> map) { warm_map_ = std::move(map); }

  // Drops the recorded states and any pending hint (buffers keep their
  // capacity). Use when switching the workspace to an unrelated model
  // family mid-stream; not needed otherwise — without set_warm_start the
  // recorded states are inert.
  void clear_warm_start() {
    warm_map_.clear();
    prev_struct_state_.clear();
  }

 private:
  friend class SimplexEngine;
  std::vector<double> tab_, lo_, hi_, cost_, xb_, dscratch_;
  std::vector<VarState> state_;
  std::vector<int> basis_;
  // Structural-variable states after the most recent solve + the pending
  // one-shot correspondence hint.
  std::vector<VarState> prev_struct_state_;
  std::vector<int> warm_map_;
};

Solution solve(const Model& model, const Options& options = {});

// Same solver, but all working memory lives in (and persists through)
// `workspace`. Results are identical to the workspace-free overload unless
// a warm-start hint is pending (see Workspace).
Solution solve(const Model& model, const Options& options,
               Workspace& workspace);

}  // namespace gc::lp
