// JSONL stream of per-solve simplex statistics (--lp-log FILE).
//
// JsonlSolveLog is a SolveStatsSink that appends one JSON object per solve
// — context label, problem dimensions, phase split, pivot/degeneracy/warm
// accounting, status and wall time — so a run's LP workload can be replayed
// through jq / pandas without re-running the simulation:
//
//   {"ctx":"s1","rows":24,"cols":112,"nonzeros":448,"phase1_iters":31,...}
//
// Writes are serialized by an internal mutex, so one log may back several
// workspaces (the controller's s1/s3/s4 trio) or several sweep workers at
// once; line order across threads is then wall-clock interleaving, which is
// why every line carries its context. Purely observational: attaching a log
// never changes solver results.
#pragma once

#include <fstream>
#include <mutex>
#include <string>

#include "lp/simplex.hpp"

namespace gc::lp {

class JsonlSolveLog : public SolveStatsSink {
 public:
  // Opens `path` for truncating write — or, with append = true, continues
  // an existing log after resume-side truncation (sim/fsio) cut it back to
  // the checkpointed slot. GC_CHECKs on failure so a typoed directory
  // fails at startup, not after the run.
  explicit JsonlSolveLog(const std::string& path, bool append = false);

  // Flushes and closes. (Destruction must not race on_solve; detach the
  // log from every workspace first.)
  ~JsonlSolveLog() override;

  void on_solve(const SolveStats& stats, const char* context) override;

  // Records the slot stamped into subsequent lines' "slot" field.
  void begin_slot(int slot) override;

  // fflush + fsync; invoked at checkpoint boundaries (simulator.cpp).
  void flush() override;

  std::int64_t lines_written() const;

 private:
  mutable std::mutex mutex_;
  std::string path_;
  std::ofstream out_;
  std::int64_t lines_ = 0;
  int slot_ = 0;
};

}  // namespace gc::lp
