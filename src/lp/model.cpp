#include "lp/model.hpp"

#include <algorithm>
#include <cmath>

namespace gc::lp {

int Model::add_variable(double lower, double upper, double objective_coeff,
                        std::string name) {
  GC_CHECK_MSG(std::isfinite(lower),
               "variable '" << name << "' needs a finite lower bound");
  GC_CHECK_MSG(!(upper < lower), "variable '" << name << "' has upper < lower");
  vars_.push_back(Var{lower, upper, objective_coeff, std::move(name)});
  return static_cast<int>(vars_.size()) - 1;
}

int Model::add_row(Sense sense, double rhs, std::string name) {
  GC_CHECK_MSG(std::isfinite(rhs), "row '" << name << "' needs finite rhs");
  rows_.push_back(Row{sense, rhs, std::move(name), {}});
  return static_cast<int>(rows_.size()) - 1;
}

void Model::set_coeff(int row, int var, double value) {
  check_var(var);
  auto& entries = rows_[check_row(row)].entries;
  for (auto& [v, c] : entries) {
    if (v == var) {
      c = value;
      return;
    }
  }
  entries.emplace_back(var, value);
}

void Model::set_objective_coeff(int var, double value) {
  vars_[check_var(var)].obj = value;
}

double Model::objective_value(const std::vector<double>& x) const {
  GC_CHECK(static_cast<int>(x.size()) == num_variables());
  double v = 0.0;
  for (int j = 0; j < num_variables(); ++j) v += vars_[j].obj * x[j];
  return v;
}

double Model::max_violation(const std::vector<double>& x) const {
  GC_CHECK(static_cast<int>(x.size()) == num_variables());
  double worst = 0.0;
  for (int j = 0; j < num_variables(); ++j) {
    worst = std::max(worst, vars_[j].lower - x[j]);
    if (std::isfinite(vars_[j].upper)) worst = std::max(worst, x[j] - vars_[j].upper);
  }
  for (const auto& row : rows_) {
    double lhs = 0.0;
    for (auto [v, c] : row.entries) lhs += c * x[v];
    switch (row.sense) {
      case Sense::LessEqual:
        worst = std::max(worst, lhs - row.rhs);
        break;
      case Sense::GreaterEqual:
        worst = std::max(worst, row.rhs - lhs);
        break;
      case Sense::Equal:
        worst = std::max(worst, std::abs(lhs - row.rhs));
        break;
    }
  }
  return worst;
}

}  // namespace gc::lp
