#include "lp/pwl.hpp"

#include <algorithm>

namespace gc::lp {

std::vector<TangentSegment> tangent_segments(
    const std::function<double(double)>& f,
    const std::function<double(double)>& df, double lo, double hi, int count) {
  GC_CHECK(count >= 1);
  GC_CHECK(lo <= hi);
  std::vector<TangentSegment> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    const double p =
        count == 1 ? lo : lo + (hi - lo) * static_cast<double>(k) /
                                   static_cast<double>(count - 1);
    const double slope = df(p);
    out.push_back(TangentSegment{slope, f(p) - slope * p});
  }
  return out;
}

double pwl_value(const std::vector<TangentSegment>& segments, double p) {
  GC_CHECK(!segments.empty());
  double best = segments.front().value(p);
  for (const auto& s : segments) best = std::max(best, s.value(p));
  return best;
}

}  // namespace gc::lp
