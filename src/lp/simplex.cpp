#include "lp/simplex.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>

#include "obs/registry.hpp"
#include "obs/timer.hpp"

namespace gc::lp {

namespace {

// Solver observability: volumes (solves, simplex iterations), the pivot /
// bound-flip split, refactorizations (periodic recomputation of the basic
// values, this tableau code's analogue of a basis refactorization), Bland
// fallbacks, and wall time per solve.
struct SimplexMetrics {
  obs::Counter& solves = obs::registry().counter("lp.solves");
  obs::Counter& iterations = obs::registry().counter("lp.iterations");
  obs::Counter& pivots = obs::registry().counter("lp.pivots");
  obs::Counter& bound_flips = obs::registry().counter("lp.bound_flips");
  obs::Counter& refactorizations =
      obs::registry().counter("lp.refactorizations");
  obs::Counter& bland_switches = obs::registry().counter("lp.bland_switches");
  // Watchdog trips: solves ended by the wall-clock budget or by NaN /
  // infinity detection instead of a clean status.
  obs::Counter& time_limits = obs::registry().counter("lp.time_limits");
  obs::Counter& numerical_errors =
      obs::registry().counter("lp.numerical_errors");
  obs::Histogram& solve_seconds =
      obs::registry().histogram("lp.solve_seconds");
  // Introspection split (SolveStats; docs/PERFORMANCE.md "Profiling
  // workflow"): phase-1 vs phase-2 work, degeneracy, warm-start accounting,
  // numeric repairs, and the posed problem's dimensions.
  obs::Counter& phase1_iterations =
      obs::registry().counter("lp.phase1_iterations");
  obs::Counter& phase2_iterations =
      obs::registry().counter("lp.phase2_iterations");
  obs::Counter& degenerate_pivots =
      obs::registry().counter("lp.degenerate_pivots");
  obs::Counter& warmstart_attempted =
      obs::registry().counter("lp.warmstart_attempted");
  obs::Counter& warmstart_accepted =
      obs::registry().counter("lp.warmstart_accepted");
  obs::Counter& warmstart_vars_reused =
      obs::registry().counter("lp.warmstart_vars_reused");
  obs::Counter& numeric_repairs = obs::registry().counter("lp.numeric_repairs");
  obs::Histogram& rows = obs::registry().histogram("lp.rows");
  obs::Histogram& cols = obs::registry().histogram("lp.cols");
  obs::Histogram& nonzeros = obs::registry().histogram("lp.nonzeros");
};

SimplexMetrics& lp_metrics() {
  // thread_local: references resolve against the thread-current registry
  // (per-worker under the parallel sweep engine; see obs/registry.hpp).
  static thread_local SimplexMetrics m;
  return m;
}

}  // namespace

const char* to_string(Status s) {
  switch (s) {
    case Status::Optimal: return "Optimal";
    case Status::Infeasible: return "Infeasible";
    case Status::Unbounded: return "Unbounded";
    case Status::IterationLimit: return "IterationLimit";
    case Status::TimeLimit: return "TimeLimit";
    case Status::NumericalError: return "NumericalError";
  }
  return "?";
}

// The solver proper. All working vectors live in the caller's Workspace
// (bound by reference) so a long-lived workspace turns every per-solve
// allocation into an assign() over retained capacity.
class SimplexEngine {
 public:
  SimplexEngine(const Model& model, const Options& opt, Workspace& ws)
      : model_(model),
        opt_(opt),
        ws_(ws),
        tab_(ws.tab_),
        lo_(ws.lo_),
        hi_(ws.hi_),
        cost_(ws.cost_),
        state_(ws.state_),
        basis_(ws.basis_),
        xb_(ws.xb_),
        dscratch_(ws.dscratch_) {
    build();
  }

  Solution run();

  // Per-solve introspection collected while running (see SolveStats).
  // Dimensions, wall time and status are stamped by solve().
  const SolveStats& stats() const { return stats_; }

  // Saves the structural variables' final states into the workspace (for
  // the next solve's warm start) and consumes the one-shot hint. Lives
  // here because SimplexEngine is the Workspace's only friend.
  static void record_warm_state(Workspace& ws, int nstruct) {
    ws.prev_struct_state_.assign(ws.state_.begin(),
                                 ws.state_.begin() + nstruct);
    ws.warm_map_.clear();
  }

  // Stores the finished solve's stats in the workspace and notifies its
  // sink, if any (also a friend-only door into Workspace internals).
  static void publish_stats(Workspace& ws, const SolveStats& stats) {
    ws.last_stats_ = stats;
    if (ws.stats_sink_ != nullptr)
      ws.stats_sink_->on_solve(stats, ws.stats_context_);
  }

 private:
  void build();
  // One simplex phase on objective `cost_`.
  Status iterate(int* iter_budget);
  void recompute_basic_values();
  double current_cost() const;
  int price(bool bland);  // entering column or -1
  void pivot(int row, int col);

  double nonbasic_value(int j) const {
    return state_[j] == VarState::AtUpper ? hi_[j] : lo_[j];
  }

  const Model& model_;
  const Options& opt_;
  Workspace& ws_;

  int m_ = 0;        // rows
  int nstruct_ = 0;  // structural variables
  int ntot_ = 0;     // structural + slack + artificial
  int width_ = 0;    // ntot_ + 1 (rhs column)

  std::vector<double>& tab_;  // m_ x width_, row-major; column ntot_ is B^-1 b
  std::vector<double>& lo_;
  std::vector<double>& hi_;
  std::vector<double>& cost_;
  std::vector<VarState>& state_;
  std::vector<int>& basis_;  // basis_[i] = variable basic in row i
  std::vector<double>& xb_;  // value of basis_[i]
  std::vector<double>& dscratch_;
  int first_artificial_ = 0;
  SolveStats stats_;
  // Wall-clock watchdog (Options::max_seconds); invalid when unlimited.
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_;

  // NaN / infinity anywhere in the basic values: the tableau degenerated
  // and no further pivot can be trusted.
  bool values_corrupt() const {
    for (double v : xb_)
      if (!std::isfinite(v)) return true;
    return false;
  }

  double& T(int i, int j) {
    return tab_[static_cast<std::size_t>(i) * width_ + j];
  }
  double T(int i, int j) const {
    return tab_[static_cast<std::size_t>(i) * width_ + j];
  }
};

void SimplexEngine::build() {
  m_ = model_.num_rows();
  nstruct_ = model_.num_variables();

  int nslack = 0;
  for (int r = 0; r < m_; ++r)
    if (model_.row_sense(r) != Sense::Equal) ++nslack;

  first_artificial_ = nstruct_ + nslack;
  ntot_ = first_artificial_ + m_;
  width_ = ntot_ + 1;
  tab_.assign(static_cast<std::size_t>(m_) * width_, 0.0);

  lo_.assign(ntot_, 0.0);
  hi_.assign(ntot_, kInf);
  cost_.assign(ntot_, 0.0);
  state_.assign(ntot_, VarState::AtLower);
  basis_.assign(m_, -1);
  xb_.assign(m_, 0.0);
  dscratch_.assign(ntot_, 0.0);

  for (int j = 0; j < nstruct_; ++j) {
    lo_[j] = model_.lower(j);
    hi_[j] = model_.upper(j);
    GC_CHECK_MSG(std::isfinite(lo_[j]),
                 "variable " << j << " lacks a finite lower bound");
  }

  // Warm start (one-shot; see Workspace): rest mapped structural variables
  // at the bound they ended the previous solve on. The artificial-basis
  // residuals below are computed from nonbasic_value(), so the hint feeds
  // straight into a (near-)feasible starting point for phase I. A variable
  // that was basic before has no bound to rest at and stays at its lower
  // bound like any cold variable.
  if (!ws_.warm_map_.empty() && !ws_.prev_struct_state_.empty()) {
    GC_CHECK_MSG(static_cast<int>(ws_.warm_map_.size()) == nstruct_,
                 "warm-start map covers " << ws_.warm_map_.size()
                                          << " variables, model has "
                                          << nstruct_);
    stats_.warm_attempted = true;
    const int nprev = static_cast<int>(ws_.prev_struct_state_.size());
    for (int j = 0; j < nstruct_; ++j) {
      const int o = ws_.warm_map_[j];
      if (o < 0 || o >= nprev) continue;
      // A mapped variable that ended the previous solve at a bound rests
      // there again (AtLower coincides with the cold default but is still a
      // carried-over state); one that was basic has no bound to carry.
      if (ws_.prev_struct_state_[o] == VarState::AtUpper &&
          std::isfinite(hi_[j])) {
        state_[j] = VarState::AtUpper;
        ++stats_.warm_vars_reused;
      } else if (ws_.prev_struct_state_[o] == VarState::AtLower) {
        ++stats_.warm_vars_reused;
      }
    }
  }

  for (int r = 0; r < m_; ++r) {
    for (auto [v, c] : model_.row_entries(r)) T(r, v) = c;
    T(r, ntot_) = model_.row_rhs(r);
  }

  // Slacks: "<=" gets a +1 slack in [0, inf); ">=" a -1 surplus in [0, inf).
  int s = nstruct_;
  for (int r = 0; r < m_; ++r) {
    switch (model_.row_sense(r)) {
      case Sense::LessEqual:
        T(r, s++) = 1.0;
        break;
      case Sense::GreaterEqual:
        T(r, s++) = -1.0;
        break;
      case Sense::Equal:
        break;
    }
  }
  GC_CHECK(s == first_artificial_);

  // Artificial basis. Basic columns must form an identity, so rows whose
  // starting residual is negative are negated wholesale (the equation is
  // unchanged; only its orientation flips) before the +1 artificial enters.
  for (int r = 0; r < m_; ++r) {
    double resid = T(r, ntot_);
    for (int j = 0; j < first_artificial_; ++j) {
      const double a = T(r, j);
      if (a != 0.0) resid -= a * nonbasic_value(j);
    }
    if (resid < 0.0) {
      for (int j = 0; j < width_; ++j) T(r, j) = -T(r, j);
      resid = -resid;
    }
    const int art = first_artificial_ + r;
    T(r, art) = 1.0;
    basis_[r] = art;
    state_[art] = VarState::Basic;
    xb_[r] = resid;
  }
}

double SimplexEngine::current_cost() const {
  double c = 0.0;
  for (int j = 0; j < ntot_; ++j)
    if (state_[j] != VarState::Basic && cost_[j] != 0.0)
      c += cost_[j] * nonbasic_value(j);
  for (int i = 0; i < m_; ++i) c += cost_[basis_[i]] * xb_[i];
  return c;
}

void SimplexEngine::recompute_basic_values() {
  lp_metrics().refactorizations.add();
  ++stats_.refactorizations;
  // x_B = (B^-1 b) - sum_{nonbasic j} (B^-1 A_j) * xval_j; both factors live
  // in the updated tableau.
  for (int i = 0; i < m_; ++i) {
    double v = T(i, ntot_);
    const double* row = &tab_[static_cast<std::size_t>(i) * width_];
    for (int j = 0; j < ntot_; ++j) {
      if (state_[j] == VarState::Basic) continue;
      const double a = row[j];
      if (a == 0.0) continue;
      const double xv = nonbasic_value(j);
      if (xv != 0.0) v -= a * xv;
    }
    xb_[i] = v;
  }
}

int SimplexEngine::price(bool bland) {
  // Reduced costs d_j = c_j - c_B^T (B^-1 A_j), accumulated row-wise so the
  // dense tableau is walked cache-friendly.
  double* d = dscratch_.data();
  for (int j = 0; j < ntot_; ++j) d[j] = cost_[j];
  for (int i = 0; i < m_; ++i) {
    const double cb = cost_[basis_[i]];
    if (cb == 0.0) continue;
    const double* row = &tab_[static_cast<std::size_t>(i) * width_];
    for (int j = 0; j < ntot_; ++j) d[j] -= cb * row[j];
  }

  int best = -1;
  double best_score = 0.0;
  for (int j = 0; j < ntot_; ++j) {
    if (state_[j] == VarState::Basic) continue;
    if (hi_[j] - lo_[j] <= 0.0) continue;  // fixed, cannot move
    double score = 0.0;
    if (state_[j] == VarState::AtLower && d[j] < -opt_.opt_tol)
      score = -d[j];
    else if (state_[j] == VarState::AtUpper && d[j] > opt_.opt_tol)
      score = d[j];
    if (score > 0.0) {
      if (bland) return j;  // lowest eligible index
      if (score > best_score) {
        best_score = score;
        best = j;
      }
    }
  }
  return best;
}

void SimplexEngine::pivot(int row, int col) {
  const double inv = 1.0 / T(row, col);
  double* prow = &tab_[static_cast<std::size_t>(row) * width_];
  for (int j = 0; j < width_; ++j) prow[j] *= inv;
  prow[col] = 1.0;  // kill roundoff
  for (int i = 0; i < m_; ++i) {
    if (i == row) continue;
    const double f = T(i, col);
    if (f == 0.0) continue;
    double* irow = &tab_[static_cast<std::size_t>(i) * width_];
    for (int j = 0; j < width_; ++j) irow[j] -= f * prow[j];
    irow[col] = 0.0;
  }
}

Status SimplexEngine::iterate(int* iter_budget) {
  bool bland = false;
  int stall = 0;
  double best_obj = current_cost();
  int since_refresh = 0;
  int since_watchdog = 0;
  constexpr double kTie = 1e-10;

  while (true) {
    if (*iter_budget <= 0) return Status::IterationLimit;
    // Watchdog: deadline and NaN screens every few pivots, cheap enough to
    // be negligible yet tight enough that a pathological solve cannot hold
    // the controller's slot hostage.
    if (++since_watchdog >= 32) {
      since_watchdog = 0;
      if (has_deadline_ && std::chrono::steady_clock::now() > deadline_)
        return Status::TimeLimit;
      if (values_corrupt()) return Status::NumericalError;
    }
    const int e = price(bland);
    if (e < 0) return Status::Optimal;
    --*iter_budget;

    const double dir = state_[e] == VarState::AtLower ? 1.0 : -1.0;
    const double span = hi_[e] - lo_[e];  // may be +inf

    // Ratio test: entering moves by t >= 0 in direction dir; basic i changes
    // at rate delta_i = -dir * T(i, e).
    double t_best = kInf;
    int leave_row = -1;
    bool leave_at_upper = false;
    double leave_pivot = 0.0;
    for (int i = 0; i < m_; ++i) {
      const double a = T(i, e);
      if (std::abs(a) < opt_.pivot_tol) continue;
      const double delta = -dir * a;
      const int b = basis_[i];
      double t;
      bool to_upper;
      if (delta > 0.0) {
        if (!std::isfinite(hi_[b])) continue;
        t = (hi_[b] - xb_[i]) / delta;
        to_upper = true;
      } else {
        t = (lo_[b] - xb_[i]) / delta;  // delta<0, numerator<=0 -> t>=0
        to_upper = false;
      }
      if (t < 0.0) t = 0.0;  // roundoff guard
      bool take = false;
      if (leave_row < 0 || t < t_best - kTie) {
        take = true;
      } else if (t <= t_best + kTie) {
        take = bland ? (b < basis_[leave_row])
                     : (std::abs(a) > std::abs(leave_pivot));
      }
      if (take) {
        t_best = std::min(t, t_best);
        leave_row = i;
        leave_at_upper = to_upper;
        leave_pivot = a;
      }
    }

    if (span <= t_best) {
      // Entering hits its own opposite bound first: bound flip, no pivot.
      if (!std::isfinite(span)) return Status::Unbounded;
      lp_metrics().bound_flips.add();
      ++stats_.bound_flips;
      state_[e] = state_[e] == VarState::AtLower ? VarState::AtUpper
                                                 : VarState::AtLower;
      for (int i = 0; i < m_; ++i) {
        const double a = T(i, e);
        if (a != 0.0) xb_[i] -= dir * a * span;
      }
    } else {
      GC_CHECK(leave_row >= 0);
      const double t = t_best;
      const double enter_val = nonbasic_value(e) + dir * t;
      for (int i = 0; i < m_; ++i) {
        if (i == leave_row) continue;
        const double a = T(i, e);
        if (a != 0.0) xb_[i] -= dir * a * t;
      }
      const int leaving = basis_[leave_row];
      state_[leaving] = leave_at_upper ? VarState::AtUpper : VarState::AtLower;
      lp_metrics().pivots.add();
      ++stats_.pivots;
      // A zero-length step is the degeneracy that stalls dense simplex on
      // big scheduling LPs — worth its own count.
      if (t <= kTie) ++stats_.degenerate_pivots;
      pivot(leave_row, e);
      basis_[leave_row] = e;
      state_[e] = VarState::Basic;
      xb_[leave_row] = enter_val;
      if (++since_refresh >= opt_.refresh_every) {
        recompute_basic_values();
        since_refresh = 0;
      }
    }

    // Stall detection -> permanent Bland's rule (termination guarantee).
    const double obj = current_cost();
    if (obj < best_obj - 1e-10 * (1.0 + std::abs(best_obj))) {
      best_obj = obj;
      stall = 0;
    } else if (!bland && ++stall >= opt_.stall_limit) {
      bland = true;
      stats_.bland = true;
      lp_metrics().bland_switches.add();
    }
  }
}

Solution SimplexEngine::run() {
  Solution sol;
  int budget = opt_.max_iterations;
  if (opt_.max_seconds > 0.0) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(opt_.max_seconds));
  }

  // Phase I: minimize the sum of artificials.
  for (int j = 0; j < ntot_; ++j) cost_[j] = 0.0;
  for (int r = 0; r < m_; ++r) cost_[first_artificial_ + r] = 1.0;
  Status st = iterate(&budget);
  recompute_basic_values();
  const double infeas = current_cost();
  sol.infeasibility = infeas;
  sol.iterations = opt_.max_iterations - budget;
  stats_.phase1_iterations = sol.iterations;
  if (!std::isfinite(infeas) || values_corrupt()) {
    st = Status::NumericalError;
    ++stats_.numeric_repairs;
  }
  if (st == Status::IterationLimit || st == Status::TimeLimit ||
      st == Status::NumericalError) {
    sol.status = st;
    return sol;
  }
  GC_CHECK_MSG(st != Status::Unbounded, "phase I cannot be unbounded");
  if (infeas > opt_.feas_tol * (1.0 + std::abs(infeas))) {
    sol.status = Status::Infeasible;
    return sol;
  }

  // Phase II: pin artificials at zero; minimize the caller's objective.
  for (int r = 0; r < m_; ++r) {
    const int a = first_artificial_ + r;
    hi_[a] = 0.0;
    if (state_[a] == VarState::AtUpper) state_[a] = VarState::AtLower;
  }
  for (int j = 0; j < ntot_; ++j) cost_[j] = 0.0;
  for (int j = 0; j < nstruct_; ++j) cost_[j] = model_.objective_coeff(j);
  st = iterate(&budget);
  recompute_basic_values();
  sol.iterations = opt_.max_iterations - budget;
  stats_.phase2_iterations = sol.iterations - stats_.phase1_iterations;
  if (values_corrupt()) {
    st = Status::NumericalError;
    ++stats_.numeric_repairs;
  }
  sol.status = st;

  sol.x.assign(nstruct_, 0.0);
  for (int j = 0; j < nstruct_; ++j)
    if (state_[j] != VarState::Basic) sol.x[j] = nonbasic_value(j);
  for (int i = 0; i < m_; ++i)
    if (basis_[i] < nstruct_) sol.x[basis_[i]] = xb_[i];
  // Clamp tiny bound violations left by floating-point drift. Clamps that
  // move a value beyond drift noise count as numeric repairs (SolveStats).
  constexpr double kDriftNoise = 1e-9;
  for (int j = 0; j < nstruct_; ++j) {
    const double before = sol.x[j];
    sol.x[j] = std::max(sol.x[j], model_.lower(j));
    if (std::isfinite(model_.upper(j)))
      sol.x[j] = std::min(sol.x[j], model_.upper(j));
    if (std::abs(sol.x[j] - before) > kDriftNoise) ++stats_.numeric_repairs;
  }
  sol.objective = model_.objective_value(sol.x);
  return sol;
}

Solution solve(const Model& model, const Options& options,
               Workspace& workspace) {
  SimplexMetrics& m = lp_metrics();
  obs::ScopedTimer timer(m.solve_seconds);
  // Span dim = structural columns, so the profiler can attribute wall time
  // to LP size classes (obs/profile.hpp).
  obs::Span span("lp.solve", -1, model.num_variables());
  obs::StopWatch wall;
  SimplexEngine s(model, options, workspace);
  Solution sol = s.run();
  // Record the structural variables' final states for the next solve's
  // warm start and consume the (one-shot) hint that fed this one.
  SimplexEngine::record_warm_state(workspace, model.num_variables());
  m.solves.add();
  m.iterations.add(sol.iterations);
  if (sol.status == Status::TimeLimit) m.time_limits.add();
  if (sol.status == Status::NumericalError) m.numerical_errors.add();

  // Per-solve introspection (always collected; only the registry
  // instruments below compile out under GC_OBS_DISABLE).
  SolveStats stats = s.stats();
  stats.rows = model.num_rows();
  stats.cols = model.num_variables();
  int nnz = 0;
  for (int r = 0; r < stats.rows; ++r)
    nnz += static_cast<int>(model.row_entries(r).size());
  stats.nonzeros = nnz;
  stats.wall_s = wall.elapsed_seconds();
  stats.status = sol.status;
  // "Accepted" = the hint survived to the engine and mapped at least one
  // variable onto a carried-over bound state.
  const bool warm_accepted = stats.warm_attempted && stats.warm_vars_reused > 0;

  m.phase1_iterations.add(stats.phase1_iterations);
  m.phase2_iterations.add(stats.phase2_iterations);
  m.degenerate_pivots.add(stats.degenerate_pivots);
  if (stats.warm_attempted) m.warmstart_attempted.add();
  if (warm_accepted) m.warmstart_accepted.add();
  // Only warm solves contribute, so events() counts attempts, not solves.
  if (stats.warm_attempted)
    m.warmstart_vars_reused.add(stats.warm_vars_reused);
  m.numeric_repairs.add(stats.numeric_repairs);
  m.rows.observe(stats.rows);
  m.cols.observe(stats.cols);
  m.nonzeros.observe(stats.nonzeros);

  SimplexEngine::publish_stats(workspace, stats);
  return sol;
}

Solution solve(const Model& model, const Options& options) {
  Workspace workspace;
  return solve(model, options, workspace);
}

}  // namespace gc::lp
