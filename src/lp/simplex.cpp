#include "lp/simplex.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>

#include "obs/registry.hpp"
#include "obs/timer.hpp"

namespace gc::lp {

namespace {

// Solver observability: volumes (solves, simplex iterations), the pivot /
// bound-flip split, refactorizations (periodic recomputation of the basic
// values, this tableau code's analogue of a basis refactorization), Bland
// fallbacks, and wall time per solve.
struct SimplexMetrics {
  obs::Counter& solves = obs::registry().counter("lp.solves");
  obs::Counter& iterations = obs::registry().counter("lp.iterations");
  obs::Counter& pivots = obs::registry().counter("lp.pivots");
  obs::Counter& bound_flips = obs::registry().counter("lp.bound_flips");
  obs::Counter& refactorizations =
      obs::registry().counter("lp.refactorizations");
  obs::Counter& bland_switches = obs::registry().counter("lp.bland_switches");
  // Watchdog trips: solves ended by the wall-clock budget or by NaN /
  // infinity detection instead of a clean status.
  obs::Counter& time_limits = obs::registry().counter("lp.time_limits");
  obs::Counter& numerical_errors =
      obs::registry().counter("lp.numerical_errors");
  obs::Histogram& solve_seconds =
      obs::registry().histogram("lp.solve_seconds");
  // Introspection split (SolveStats; docs/PERFORMANCE.md "Profiling
  // workflow"): phase-1 vs phase-2 work, degeneracy, warm-start accounting,
  // numeric repairs, and the posed problem's dimensions.
  obs::Counter& phase1_iterations =
      obs::registry().counter("lp.phase1_iterations");
  obs::Counter& phase2_iterations =
      obs::registry().counter("lp.phase2_iterations");
  obs::Counter& degenerate_pivots =
      obs::registry().counter("lp.degenerate_pivots");
  obs::Counter& warmstart_attempted =
      obs::registry().counter("lp.warmstart_attempted");
  obs::Counter& warmstart_accepted =
      obs::registry().counter("lp.warmstart_accepted");
  obs::Counter& warmstart_vars_reused =
      obs::registry().counter("lp.warmstart_vars_reused");
  // Cross-slot warm starts (ControllerOptions::warm_across_slots): the
  // subset of warm attempts/accepts whose hint crossed a slot boundary.
  obs::Counter& warmstart_cross_slot_attempted =
      obs::registry().counter("lp.warmstart_cross_slot_attempted");
  obs::Counter& warmstart_cross_slot_accepted =
      obs::registry().counter("lp.warmstart_cross_slot_accepted");
  obs::Counter& numeric_repairs = obs::registry().counter("lp.numeric_repairs");
  // Sparse-storage volume (Options::sparse): solves routed to the sparse
  // engine, and the end-of-solve tableau fill in nonzero entries.
  obs::Counter& sparse_solves = obs::registry().counter("lp.sparse_solves");
  obs::Histogram& fill_nonzeros =
      obs::registry().histogram("lp.fill_nonzeros");
  obs::Histogram& rows = obs::registry().histogram("lp.rows");
  obs::Histogram& cols = obs::registry().histogram("lp.cols");
  obs::Histogram& nonzeros = obs::registry().histogram("lp.nonzeros");
};

SimplexMetrics& lp_metrics() {
  // thread_local: references resolve against the thread-current registry
  // (per-worker under the parallel sweep engine; see obs/registry.hpp).
  static thread_local SimplexMetrics m;
  return m;
}

}  // namespace

const char* to_string(Status s) {
  switch (s) {
    case Status::Optimal: return "Optimal";
    case Status::Infeasible: return "Infeasible";
    case Status::Unbounded: return "Unbounded";
    case Status::IterationLimit: return "IterationLimit";
    case Status::TimeLimit: return "TimeLimit";
    case Status::NumericalError: return "NumericalError";
  }
  return "?";
}

// Friend-only door into Workspace internals shared by solve() and both
// engine instantiations.
struct WorkspaceHooks {
  // Saves the structural variables' final states into the workspace (for
  // the next solve's warm start) and consumes the one-shot hint.
  static void record_warm_state(Workspace& ws, int nstruct) {
    ws.prev_struct_state_.assign(ws.state_.begin(),
                                 ws.state_.begin() + nstruct);
    ws.warm_map_.clear();
    ws.warm_cross_slot_ = false;
  }

  // Stores the finished solve's stats in the workspace and notifies its
  // sink, if any.
  static void publish_stats(Workspace& ws, const SolveStats& stats) {
    ws.last_stats_ = stats;
    if (ws.stats_sink_ != nullptr)
      ws.stats_sink_->on_solve(stats, ws.stats_context_);
  }
};

// ---------------------------------------------------------------------------
// Tableau storage policies.
//
// The driver (SimplexEngineT) never touches coefficients directly; it goes
// through this interface:
//   reset/load_rows/append_unit  build-time population
//   rhs/set_rhs/negate_row       rhs column + row orientation flips
//   scan_row                     nonzero (col, value) pairs, ascending col
//   price_accumulate             d[j] -= cb * a_ij over the row
//   gather_col                   nonzero (row, value) pairs, ascending row
//   pivot                        elementary row operations for one pivot
//
// Bit-identity contract: the dense driver loops always skipped exact-zero
// coefficients in every decision (pricing eligibility, ratio test,
// basic-value updates, pivot row selection), and the skipped zero-term
// arithmetic is an IEEE no-op except for the sign of zero, which no solver
// predicate observes. Both storages therefore present the same nonzero
// sequences in the same (ascending) order, the driver takes the same
// decisions, and the two engines produce bit-identical solutions.
// ---------------------------------------------------------------------------

// Dense storage: the row-major tableau this solver has always used, column
// ntot holding B^-1 b. Operation order matches the pre-policy code exactly.
struct DenseTableau {
  explicit DenseTableau(Workspace& ws) : tab(ws.tab_) {}

  void reset(int m_, int ntot_) {
    m = m_;
    ntot = ntot_;
    width = ntot_ + 1;
    tab.assign(static_cast<std::size_t>(m) * width, 0.0);
  }

  void load_rows(const Model& model) {
    for (int r = 0; r < m; ++r) {
      for (auto [v, c] : model.row_entries(r)) at(r, v) = c;
      at(r, ntot) = model.row_rhs(r);
    }
  }

  void append_unit(int r, int j, double v) { at(r, j) = v; }

  double rhs(int r) const { return at(r, ntot); }

  void negate_row(int r) {
    double* row = &tab[static_cast<std::size_t>(r) * width];
    for (int j = 0; j < width; ++j) row[j] = -row[j];
  }

  template <class F>
  void scan_row(int r, int jlimit, F&& f) const {
    const double* row = &tab[static_cast<std::size_t>(r) * width];
    for (int j = 0; j < jlimit; ++j) {
      const double a = row[j];
      if (a != 0.0) f(j, a);
    }
  }

  void price_accumulate(int i, double cb, double* d) const {
    const double* row = &tab[static_cast<std::size_t>(i) * width];
    for (int j = 0; j < ntot; ++j) d[j] -= cb * row[j];
  }

  void gather_col(int e, std::vector<std::pair<int, double>>& out) const {
    for (int i = 0; i < m; ++i) {
      const double a = tab[static_cast<std::size_t>(i) * width + e];
      if (a != 0.0) out.emplace_back(i, a);
    }
  }

  // `col_cache` holds the entering column's nonzero entries as gathered
  // before this pivot; other rows' entries in that column are unchanged by
  // the pivot-row scaling, so the cached factors equal the live ones.
  void pivot(int row, int col,
             const std::vector<std::pair<int, double>>& col_cache) {
    const double inv = 1.0 / at(row, col);
    double* prow = &tab[static_cast<std::size_t>(row) * width];
    for (int j = 0; j < width; ++j) prow[j] *= inv;
    prow[col] = 1.0;  // kill roundoff
    for (const auto& [i, f] : col_cache) {
      if (i == row) continue;
      double* irow = &tab[static_cast<std::size_t>(i) * width];
      for (int j = 0; j < width; ++j) irow[j] -= f * prow[j];
      irow[col] = 0.0;
    }
  }

  std::int64_t nonzeros() const {
    std::int64_t nnz = 0;
    for (int i = 0; i < m; ++i) {
      const double* row = &tab[static_cast<std::size_t>(i) * width];
      for (int j = 0; j < ntot; ++j)
        if (row[j] != 0.0) ++nnz;
    }
    return nnz;
  }

  std::vector<double>& tab;
  int m = 0, ntot = 0, width = 0;

  double& at(int i, int j) {
    return tab[static_cast<std::size_t>(i) * width + j];
  }
  double at(int i, int j) const {
    return tab[static_cast<std::size_t>(i) * width + j];
  }
};

// Sparse storage: per-row sorted (column, value) entry lists plus a dense
// rhs column. Exact-zero results of row updates are dropped instead of
// stored — equivalent to the dense storage holding a 0.0 the driver skips
// everywhere. Fill-in stays bounded on this project's block-structured
// LPs (user blocks never couple to each other under pivoting), which is
// where the asymptotic win over the dense tableau comes from.
struct SparseTableau {
  using Entry = std::pair<int, double>;
  using Row = std::vector<Entry>;

  explicit SparseTableau(Workspace& ws)
      : rows(ws.sp_rows_), rhs_(ws.sp_rhs_), merge_(ws.sp_merge_) {}

  void reset(int m_, int ntot_) {
    m = m_;
    ntot = ntot_;
    if (static_cast<int>(rows.size()) < m) rows.resize(m);
    for (int r = 0; r < m; ++r) rows[r].clear();
    rhs_.assign(m, 0.0);
  }

  void load_rows(const Model& model) {
    for (int r = 0; r < m; ++r) {
      Row& row = rows[r];
      for (auto [v, c] : model.row_entries(r))
        if (c != 0.0) row.emplace_back(v, c);
      // Model merges duplicate coefficients, so columns are unique and the
      // sort recovers the ascending order the dense scans walk in.
      std::sort(row.begin(), row.end());
      rhs_[r] = model.row_rhs(r);
    }
  }

  // Build-time slack/artificial placement: both use columns strictly above
  // every column already in the row, so appending keeps rows sorted.
  void append_unit(int r, int j, double v) { rows[r].emplace_back(j, v); }

  double rhs(int r) const { return rhs_[r]; }

  void negate_row(int r) {
    for (auto& e : rows[r]) e.second = -e.second;
    rhs_[r] = -rhs_[r];
  }

  template <class F>
  void scan_row(int r, int jlimit, F&& f) const {
    for (const auto& [j, a] : rows[r]) {
      if (j >= jlimit) break;
      f(j, a);
    }
  }

  void price_accumulate(int i, double cb, double* d) const {
    for (const auto& [j, a] : rows[i]) d[j] -= cb * a;
  }

  void gather_col(int e, std::vector<Entry>& out) const {
    for (int i = 0; i < m; ++i) {
      const Row& row = rows[i];
      auto it = std::lower_bound(
          row.begin(), row.end(), e,
          [](const Entry& ent, int j) { return ent.first < j; });
      if (it != row.end() && it->first == e) out.emplace_back(i, it->second);
    }
  }

  void pivot(int row, int col, const std::vector<Entry>& col_cache) {
    Row& prow = rows[row];
    const double inv = 1.0 / value_at(prow, col);
    for (auto& e : prow) e.second *= inv;
    rhs_[row] *= inv;
    set_value(prow, col, 1.0);  // kill roundoff
    for (const auto& [i, f] : col_cache) {
      if (i == row) continue;
      merge_sub(rows[i], f, prow, col);
      rhs_[i] -= f * rhs_[row];
    }
  }

  std::int64_t nonzeros() const {
    std::int64_t nnz = 0;
    for (int r = 0; r < m; ++r) nnz += static_cast<std::int64_t>(rows[r].size());
    return nnz;
  }

  std::vector<Row>& rows;
  std::vector<double>& rhs_;
  Row& merge_;
  int m = 0, ntot = 0;

 private:
  static double value_at(const Row& row, int col) {
    auto it = std::lower_bound(
        row.begin(), row.end(), col,
        [](const Entry& ent, int j) { return ent.first < j; });
    return it != row.end() && it->first == col ? it->second : 0.0;
  }

  static void set_value(Row& row, int col, double v) {
    auto it = std::lower_bound(
        row.begin(), row.end(), col,
        [](const Entry& ent, int j) { return ent.first < j; });
    if (it != row.end() && it->first == col) it->second = v;
  }

  // irow -= f * prow as a sorted merge; the entering column `col` is
  // zeroed exactly (the dense code writes irow[col] = 0.0), and entries
  // whose update cancels to exactly 0.0 are dropped.
  void merge_sub(Row& irow, double f, const Row& prow, int col) {
    merge_.clear();
    std::size_t a = 0, b = 0;
    const std::size_t na = irow.size(), nb = prow.size();
    constexpr int kEnd = std::numeric_limits<int>::max();
    while (a < na || b < nb) {
      const int ja = a < na ? irow[a].first : kEnd;
      const int jb = b < nb ? prow[b].first : kEnd;
      if (ja < jb) {
        if (ja != col) merge_.push_back(irow[a]);
        ++a;
      } else if (jb < ja) {
        if (jb != col) {
          const double v = -f * prow[b].second;
          if (v != 0.0) merge_.emplace_back(jb, v);
        }
        ++b;
      } else {
        if (ja != col) {
          const double v = irow[a].second - f * prow[b].second;
          if (v != 0.0) merge_.emplace_back(ja, v);
        }
        ++a;
        ++b;
      }
    }
    irow.swap(merge_);
  }
};

// The solver proper, templated on tableau storage. All working vectors live
// in the caller's Workspace (bound by reference) so a long-lived workspace
// turns every per-solve allocation into an assign() over retained capacity.
template <class Tableau>
class SimplexEngineT {
 public:
  SimplexEngineT(const Model& model, const Options& opt, Workspace& ws)
      : model_(model),
        opt_(opt),
        ws_(ws),
        tb_(ws),
        lo_(ws.lo_),
        hi_(ws.hi_),
        cost_(ws.cost_),
        state_(ws.state_),
        basis_(ws.basis_),
        xb_(ws.xb_),
        dscratch_(ws.dscratch_),
        colbuf_(ws.colbuf_) {
    build();
  }

  Solution run() {
    Solution sol = run_phases();
    stats_.fill_nonzeros = tb_.nonzeros();
    return sol;
  }

  // Per-solve introspection collected while running (see SolveStats).
  // Dimensions, wall time and status are stamped by solve().
  const SolveStats& stats() const { return stats_; }

 private:
  void build();
  Solution run_phases();
  // One simplex phase on objective `cost_`.
  Status iterate(int* iter_budget);
  void recompute_basic_values();
  double current_cost() const;
  int price(bool bland);  // entering column or -1

  double nonbasic_value(int j) const {
    return state_[j] == VarState::AtUpper ? hi_[j] : lo_[j];
  }

  const Model& model_;
  const Options& opt_;
  Workspace& ws_;
  Tableau tb_;

  int m_ = 0;        // rows
  int nstruct_ = 0;  // structural variables
  int ntot_ = 0;     // structural + slack + artificial

  std::vector<double>& lo_;
  std::vector<double>& hi_;
  std::vector<double>& cost_;
  std::vector<VarState>& state_;
  std::vector<int>& basis_;  // basis_[i] = variable basic in row i
  std::vector<double>& xb_;  // value of basis_[i]
  std::vector<double>& dscratch_;
  std::vector<std::pair<int, double>>& colbuf_;
  int first_artificial_ = 0;
  SolveStats stats_;
  // Wall-clock watchdog (Options::max_seconds); invalid when unlimited.
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_;

  // NaN / infinity anywhere in the basic values: the tableau degenerated
  // and no further pivot can be trusted.
  bool values_corrupt() const {
    for (double v : xb_)
      if (!std::isfinite(v)) return true;
    return false;
  }
};

template <class Tableau>
void SimplexEngineT<Tableau>::build() {
  m_ = model_.num_rows();
  nstruct_ = model_.num_variables();

  int nslack = 0;
  for (int r = 0; r < m_; ++r)
    if (model_.row_sense(r) != Sense::Equal) ++nslack;

  first_artificial_ = nstruct_ + nslack;
  ntot_ = first_artificial_ + m_;
  tb_.reset(m_, ntot_);

  lo_.assign(ntot_, 0.0);
  hi_.assign(ntot_, kInf);
  cost_.assign(ntot_, 0.0);
  state_.assign(ntot_, VarState::AtLower);
  basis_.assign(m_, -1);
  xb_.assign(m_, 0.0);
  dscratch_.assign(ntot_, 0.0);

  for (int j = 0; j < nstruct_; ++j) {
    lo_[j] = model_.lower(j);
    hi_[j] = model_.upper(j);
    GC_CHECK_MSG(std::isfinite(lo_[j]),
                 "variable " << j << " lacks a finite lower bound");
  }

  // Warm start (one-shot; see Workspace): rest mapped structural variables
  // at the bound they ended the previous solve on. The artificial-basis
  // residuals below are computed from nonbasic_value(), so the hint feeds
  // straight into a (near-)feasible starting point for phase I. A variable
  // that was basic before has no bound to rest at and stays at its lower
  // bound like any cold variable.
  if (!ws_.warm_map_.empty() && !ws_.prev_struct_state_.empty()) {
    GC_CHECK_MSG(static_cast<int>(ws_.warm_map_.size()) == nstruct_,
                 "warm-start map covers " << ws_.warm_map_.size()
                                          << " variables, model has "
                                          << nstruct_);
    stats_.warm_attempted = true;
    stats_.warm_cross_slot = ws_.warm_cross_slot_;
    const int nprev = static_cast<int>(ws_.prev_struct_state_.size());
    for (int j = 0; j < nstruct_; ++j) {
      const int o = ws_.warm_map_[j];
      if (o < 0 || o >= nprev) continue;
      // A mapped variable that ended the previous solve at a bound rests
      // there again (AtLower coincides with the cold default but is still a
      // carried-over state); one that was basic has no bound to carry.
      if (ws_.prev_struct_state_[o] == VarState::AtUpper &&
          std::isfinite(hi_[j])) {
        state_[j] = VarState::AtUpper;
        ++stats_.warm_vars_reused;
      } else if (ws_.prev_struct_state_[o] == VarState::AtLower) {
        ++stats_.warm_vars_reused;
      }
    }
  }

  tb_.load_rows(model_);

  // Slacks: "<=" gets a +1 slack in [0, inf); ">=" a -1 surplus in [0, inf).
  int s = nstruct_;
  for (int r = 0; r < m_; ++r) {
    switch (model_.row_sense(r)) {
      case Sense::LessEqual:
        tb_.append_unit(r, s++, 1.0);
        break;
      case Sense::GreaterEqual:
        tb_.append_unit(r, s++, -1.0);
        break;
      case Sense::Equal:
        break;
    }
  }
  GC_CHECK(s == first_artificial_);

  // Artificial basis. Basic columns must form an identity, so rows whose
  // starting residual is negative are negated wholesale (the equation is
  // unchanged; only its orientation flips) before the +1 artificial enters.
  for (int r = 0; r < m_; ++r) {
    double resid = tb_.rhs(r);
    tb_.scan_row(r, first_artificial_, [&](int j, double a) {
      resid -= a * nonbasic_value(j);
    });
    if (resid < 0.0) {
      tb_.negate_row(r);
      resid = -resid;
    }
    const int art = first_artificial_ + r;
    tb_.append_unit(r, art, 1.0);
    basis_[r] = art;
    state_[art] = VarState::Basic;
    xb_[r] = resid;
  }
}

template <class Tableau>
double SimplexEngineT<Tableau>::current_cost() const {
  double c = 0.0;
  for (int j = 0; j < ntot_; ++j)
    if (state_[j] != VarState::Basic && cost_[j] != 0.0)
      c += cost_[j] * nonbasic_value(j);
  for (int i = 0; i < m_; ++i) c += cost_[basis_[i]] * xb_[i];
  return c;
}

template <class Tableau>
void SimplexEngineT<Tableau>::recompute_basic_values() {
  lp_metrics().refactorizations.add();
  ++stats_.refactorizations;
  // x_B = (B^-1 b) - sum_{nonbasic j} (B^-1 A_j) * xval_j; both factors live
  // in the updated tableau.
  for (int i = 0; i < m_; ++i) {
    double v = tb_.rhs(i);
    tb_.scan_row(i, ntot_, [&](int j, double a) {
      if (state_[j] == VarState::Basic) return;
      const double xv = nonbasic_value(j);
      if (xv != 0.0) v -= a * xv;
    });
    xb_[i] = v;
  }
}

template <class Tableau>
int SimplexEngineT<Tableau>::price(bool bland) {
  // Reduced costs d_j = c_j - c_B^T (B^-1 A_j), accumulated row-wise so the
  // tableau is walked storage-friendly.
  double* d = dscratch_.data();
  for (int j = 0; j < ntot_; ++j) d[j] = cost_[j];
  for (int i = 0; i < m_; ++i) {
    const double cb = cost_[basis_[i]];
    if (cb == 0.0) continue;
    tb_.price_accumulate(i, cb, d);
  }

  int best = -1;
  double best_score = 0.0;
  for (int j = 0; j < ntot_; ++j) {
    if (state_[j] == VarState::Basic) continue;
    if (hi_[j] - lo_[j] <= 0.0) continue;  // fixed, cannot move
    double score = 0.0;
    if (state_[j] == VarState::AtLower && d[j] < -opt_.opt_tol)
      score = -d[j];
    else if (state_[j] == VarState::AtUpper && d[j] > opt_.opt_tol)
      score = d[j];
    if (score > 0.0) {
      if (bland) return j;  // lowest eligible index
      if (score > best_score) {
        best_score = score;
        best = j;
      }
    }
  }
  return best;
}

template <class Tableau>
Status SimplexEngineT<Tableau>::iterate(int* iter_budget) {
  bool bland = false;
  int stall = 0;
  double best_obj = current_cost();
  int since_refresh = 0;
  int since_watchdog = 0;
  constexpr double kTie = 1e-10;

  while (true) {
    if (*iter_budget <= 0) return Status::IterationLimit;
    // Watchdog: deadline and NaN screens every few pivots, cheap enough to
    // be negligible yet tight enough that a pathological solve cannot hold
    // the controller's slot hostage.
    if (++since_watchdog >= 32) {
      since_watchdog = 0;
      if (has_deadline_ && std::chrono::steady_clock::now() > deadline_)
        return Status::TimeLimit;
      if (values_corrupt()) return Status::NumericalError;
    }
    const int e = price(bland);
    if (e < 0) return Status::Optimal;
    --*iter_budget;

    const double dir = state_[e] == VarState::AtLower ? 1.0 : -1.0;
    const double span = hi_[e] - lo_[e];  // may be +inf

    // The entering column is gathered once per iteration; its nonzero
    // entries (ascending row) serve the ratio test, the bound-flip / step
    // updates of the basic values, and the pivot's row eliminations.
    colbuf_.clear();
    tb_.gather_col(e, colbuf_);

    // Ratio test: entering moves by t >= 0 in direction dir; basic i changes
    // at rate delta_i = -dir * T(i, e).
    double t_best = kInf;
    int leave_row = -1;
    bool leave_at_upper = false;
    double leave_pivot = 0.0;
    for (const auto& [i, a] : colbuf_) {
      if (std::abs(a) < opt_.pivot_tol) continue;
      const double delta = -dir * a;
      const int b = basis_[i];
      double t;
      bool to_upper;
      if (delta > 0.0) {
        if (!std::isfinite(hi_[b])) continue;
        t = (hi_[b] - xb_[i]) / delta;
        to_upper = true;
      } else {
        t = (lo_[b] - xb_[i]) / delta;  // delta<0, numerator<=0 -> t>=0
        to_upper = false;
      }
      if (t < 0.0) t = 0.0;  // roundoff guard
      bool take = false;
      if (leave_row < 0 || t < t_best - kTie) {
        take = true;
      } else if (t <= t_best + kTie) {
        take = bland ? (b < basis_[leave_row])
                     : (std::abs(a) > std::abs(leave_pivot));
      }
      if (take) {
        t_best = std::min(t, t_best);
        leave_row = i;
        leave_at_upper = to_upper;
        leave_pivot = a;
      }
    }

    if (span <= t_best) {
      // Entering hits its own opposite bound first: bound flip, no pivot.
      if (!std::isfinite(span)) return Status::Unbounded;
      lp_metrics().bound_flips.add();
      ++stats_.bound_flips;
      state_[e] = state_[e] == VarState::AtLower ? VarState::AtUpper
                                                 : VarState::AtLower;
      for (const auto& [i, a] : colbuf_) xb_[i] -= dir * a * span;
    } else {
      GC_CHECK(leave_row >= 0);
      const double t = t_best;
      const double enter_val = nonbasic_value(e) + dir * t;
      for (const auto& [i, a] : colbuf_) {
        if (i == leave_row) continue;
        xb_[i] -= dir * a * t;
      }
      const int leaving = basis_[leave_row];
      state_[leaving] = leave_at_upper ? VarState::AtUpper : VarState::AtLower;
      lp_metrics().pivots.add();
      ++stats_.pivots;
      // A zero-length step is the degeneracy that stalls dense simplex on
      // big scheduling LPs — worth its own count.
      if (t <= kTie) ++stats_.degenerate_pivots;
      tb_.pivot(leave_row, e, colbuf_);
      basis_[leave_row] = e;
      state_[e] = VarState::Basic;
      xb_[leave_row] = enter_val;
      if (++since_refresh >= opt_.refresh_every) {
        recompute_basic_values();
        since_refresh = 0;
      }
    }

    // Stall detection -> permanent Bland's rule (termination guarantee).
    const double obj = current_cost();
    if (obj < best_obj - 1e-10 * (1.0 + std::abs(best_obj))) {
      best_obj = obj;
      stall = 0;
    } else if (!bland && ++stall >= opt_.stall_limit) {
      bland = true;
      stats_.bland = true;
      lp_metrics().bland_switches.add();
    }
  }
}

template <class Tableau>
Solution SimplexEngineT<Tableau>::run_phases() {
  Solution sol;
  int budget = opt_.max_iterations;
  if (opt_.max_seconds > 0.0) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(opt_.max_seconds));
  }

  // Phase I: minimize the sum of artificials.
  for (int j = 0; j < ntot_; ++j) cost_[j] = 0.0;
  for (int r = 0; r < m_; ++r) cost_[first_artificial_ + r] = 1.0;
  Status st = iterate(&budget);
  recompute_basic_values();
  const double infeas = current_cost();
  sol.infeasibility = infeas;
  sol.iterations = opt_.max_iterations - budget;
  stats_.phase1_iterations = sol.iterations;
  if (!std::isfinite(infeas) || values_corrupt()) {
    st = Status::NumericalError;
    ++stats_.numeric_repairs;
  }
  if (st == Status::IterationLimit || st == Status::TimeLimit ||
      st == Status::NumericalError) {
    sol.status = st;
    return sol;
  }
  GC_CHECK_MSG(st != Status::Unbounded, "phase I cannot be unbounded");
  if (infeas > opt_.feas_tol * (1.0 + std::abs(infeas))) {
    sol.status = Status::Infeasible;
    return sol;
  }

  // Phase II: pin artificials at zero; minimize the caller's objective.
  for (int r = 0; r < m_; ++r) {
    const int a = first_artificial_ + r;
    hi_[a] = 0.0;
    if (state_[a] == VarState::AtUpper) state_[a] = VarState::AtLower;
  }
  for (int j = 0; j < ntot_; ++j) cost_[j] = 0.0;
  for (int j = 0; j < nstruct_; ++j) cost_[j] = model_.objective_coeff(j);
  st = iterate(&budget);
  recompute_basic_values();
  sol.iterations = opt_.max_iterations - budget;
  stats_.phase2_iterations = sol.iterations - stats_.phase1_iterations;
  if (values_corrupt()) {
    st = Status::NumericalError;
    ++stats_.numeric_repairs;
  }
  sol.status = st;

  sol.x.assign(nstruct_, 0.0);
  for (int j = 0; j < nstruct_; ++j)
    if (state_[j] != VarState::Basic) sol.x[j] = nonbasic_value(j);
  for (int i = 0; i < m_; ++i)
    if (basis_[i] < nstruct_) sol.x[basis_[i]] = xb_[i];
  // Clamp tiny bound violations left by floating-point drift. Clamps that
  // move a value beyond drift noise count as numeric repairs (SolveStats).
  constexpr double kDriftNoise = 1e-9;
  for (int j = 0; j < nstruct_; ++j) {
    const double before = sol.x[j];
    sol.x[j] = std::max(sol.x[j], model_.lower(j));
    if (std::isfinite(model_.upper(j)))
      sol.x[j] = std::min(sol.x[j], model_.upper(j));
    if (std::abs(sol.x[j] - before) > kDriftNoise) ++stats_.numeric_repairs;
  }
  sol.objective = model_.objective_value(sol.x);
  return sol;
}

namespace {

// Storage selection (Options::sparse): Auto routes a solve to the sparse
// engine when the dense tableau would be big (cells = rows x (total
// columns + 1), counting slacks and artificials) AND the structural
// coefficient matrix is thin. Pure speed heuristic — both engines produce
// bit-identical results.
bool pick_sparse(const Model& model, const Options& options,
                 std::int64_t nnz) {
  if (options.sparse == SparseMode::Force) return true;
  if (options.sparse == SparseMode::Never) return false;
  const std::int64_t rows = model.num_rows();
  const std::int64_t cols = model.num_variables();
  if (rows <= 0 || cols <= 0) return false;
  std::int64_t nslack = 0;
  for (int r = 0; r < rows; ++r)
    if (model.row_sense(r) != Sense::Equal) ++nslack;
  const std::int64_t cells = rows * (cols + nslack + rows + 1);
  if (cells < options.sparse_min_cells) return false;
  const double density =
      static_cast<double>(nnz) / static_cast<double>(rows * cols);
  return density <= options.sparse_max_density;
}

}  // namespace

Solution solve(const Model& model, const Options& options,
               Workspace& workspace) {
  SimplexMetrics& m = lp_metrics();
  obs::ScopedTimer timer(m.solve_seconds);
  // Span dim = structural columns, so the profiler can attribute wall time
  // to LP size classes (obs/profile.hpp).
  obs::Span span("lp.solve", -1, model.num_variables());
  obs::StopWatch wall;

  std::int64_t nnz = 0;
  for (int r = 0; r < model.num_rows(); ++r)
    nnz += static_cast<std::int64_t>(model.row_entries(r).size());
  const bool use_sparse = pick_sparse(model, options, nnz);

  Solution sol;
  SolveStats stats;
  if (use_sparse) {
    SimplexEngineT<SparseTableau> s(model, options, workspace);
    sol = s.run();
    stats = s.stats();
  } else {
    SimplexEngineT<DenseTableau> s(model, options, workspace);
    sol = s.run();
    stats = s.stats();
  }
  // Record the structural variables' final states for the next solve's
  // warm start and consume the (one-shot) hint that fed this one.
  WorkspaceHooks::record_warm_state(workspace, model.num_variables());
  m.solves.add();
  m.iterations.add(sol.iterations);
  if (sol.status == Status::TimeLimit) m.time_limits.add();
  if (sol.status == Status::NumericalError) m.numerical_errors.add();

  // Per-solve introspection (always collected; only the registry
  // instruments below compile out under GC_OBS_DISABLE).
  stats.rows = model.num_rows();
  stats.cols = model.num_variables();
  stats.nonzeros = static_cast<int>(nnz);
  stats.sparse = use_sparse;
  stats.wall_s = wall.elapsed_seconds();
  stats.status = sol.status;
  // "Accepted" = the hint survived to the engine and mapped at least one
  // variable onto a carried-over bound state.
  const bool warm_accepted = stats.warm_attempted && stats.warm_vars_reused > 0;

  m.phase1_iterations.add(stats.phase1_iterations);
  m.phase2_iterations.add(stats.phase2_iterations);
  m.degenerate_pivots.add(stats.degenerate_pivots);
  if (stats.warm_attempted) m.warmstart_attempted.add();
  if (warm_accepted) m.warmstart_accepted.add();
  // Only warm solves contribute, so events() counts attempts, not solves.
  if (stats.warm_attempted)
    m.warmstart_vars_reused.add(stats.warm_vars_reused);
  if (stats.warm_attempted && stats.warm_cross_slot)
    m.warmstart_cross_slot_attempted.add();
  if (warm_accepted && stats.warm_cross_slot)
    m.warmstart_cross_slot_accepted.add();
  m.numeric_repairs.add(stats.numeric_repairs);
  if (use_sparse) m.sparse_solves.add();
  m.fill_nonzeros.observe(static_cast<double>(stats.fill_nonzeros));
  m.rows.observe(stats.rows);
  m.cols.observe(stats.cols);
  m.nonzeros.observe(stats.nonzeros);

  WorkspaceHooks::publish_stats(workspace, stats);
  return sol;
}

Solution solve(const Model& model, const Options& options) {
  Workspace workspace;
  return solve(model, options, workspace);
}

}  // namespace gc::lp
