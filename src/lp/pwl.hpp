// Piecewise-linear under-approximation of a convex function by tangent
// lines.
//
// Used to embed the convex grid-energy cost f(P) into linear programs (the
// paper hands the convex subproblem and the relaxed lower-bound problem to
// CPLEX; we linearize instead). Because every tangent of a convex function
// lies below the function, max_k (slope_k * P + intercept_k) <= f(P), so an
// LP minimum computed with the tangents *under-estimates* the true optimum —
// exactly the direction required to keep Theorem 5's lower bound valid.
// The gap shrinks as O(1/segments^2) for smooth f.
#pragma once

#include <functional>
#include <vector>

#include "util/check.hpp"

namespace gc::lp {

struct TangentSegment {
  double slope = 0.0;
  double intercept = 0.0;
  double value(double p) const { return slope * p + intercept; }
};

// Tangents of `f` (with derivative `df`) at `count` points spread uniformly
// over [lo, hi], endpoints included. Requires count >= 1 and lo <= hi.
std::vector<TangentSegment> tangent_segments(
    const std::function<double(double)>& f,
    const std::function<double(double)>& df, double lo, double hi, int count);

// The PWL approximation: max over segments (the epigraph form used in LPs).
double pwl_value(const std::vector<TangentSegment>& segments, double p);

}  // namespace gc::lp
