#include "lp/solve_log.hpp"

#include <cstdio>

#include "util/check.hpp"
#include "util/fsio.hpp"

namespace gc::lp {

JsonlSolveLog::JsonlSolveLog(const std::string& path, bool append)
    : path_(path), out_(path, append ? std::ios::app : std::ios::trunc) {
  GC_CHECK_MSG(out_.good(), "cannot open LP solve log " << path);
}

JsonlSolveLog::~JsonlSolveLog() {
  std::lock_guard<std::mutex> lock(mutex_);
  out_.flush();
}

void JsonlSolveLog::on_solve(const SolveStats& stats, const char* context) {
  // One self-contained line per solve; keys stay flat so `jq -c` and
  // column-oriented readers need no schema.
  char buf[640];
  std::lock_guard<std::mutex> lock(mutex_);
  std::snprintf(
      buf, sizeof buf,
      "{\"ctx\":\"%s\",\"slot\":%d,\"rows\":%d,\"cols\":%d,\"nonzeros\":%d,"
      "\"phase1_iters\":%d,\"phase2_iters\":%d,\"pivots\":%d,"
      "\"degenerate_pivots\":%d,\"bound_flips\":%d,\"refactorizations\":%d,"
      "\"bland\":%s,\"warm_attempted\":%s,\"warm_vars_reused\":%d,"
      "\"warm_cross_slot\":%s,\"sparse\":%s,\"fill_nonzeros\":%lld,"
      "\"numeric_repairs\":%d,\"status\":\"%s\",\"wall_s\":%.9f}",
      context != nullptr ? context : "", slot_, stats.rows, stats.cols,
      stats.nonzeros, stats.phase1_iterations, stats.phase2_iterations,
      stats.pivots, stats.degenerate_pivots, stats.bound_flips,
      stats.refactorizations, stats.bland ? "true" : "false",
      stats.warm_attempted ? "true" : "false", stats.warm_vars_reused,
      stats.warm_cross_slot ? "true" : "false",
      stats.sparse ? "true" : "false",
      static_cast<long long>(stats.fill_nonzeros), stats.numeric_repairs,
      to_string(stats.status), stats.wall_s);
  out_ << buf << '\n';
  ++lines_;
}

void JsonlSolveLog::begin_slot(int slot) {
  std::lock_guard<std::mutex> lock(mutex_);
  slot_ = slot;
}

void JsonlSolveLog::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  out_.flush();
  util::fsync_file(path_);
}

std::int64_t JsonlSolveLog::lines_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

}  // namespace gc::lp
