// Linear-program container: variables with bounds, rows with sense/rhs,
// sparse coefficients, and a minimization objective.
//
// This module replaces the role CPLEX 12.4 plays in the paper's evaluation
// (the relaxed LPs inside the sequential-fix scheduler, the S4 energy
// management program after piecewise linearization, and the relaxed
// lower-bound problem P3-bar).
//
// Conventions:
//  * objective is always MINIMIZED;
//  * every variable must have a finite lower bound (callers shift if they
//    need a free variable); upper bounds may be +infinity;
//  * rows are a <= / = / >= comparison against a finite right-hand side.
#pragma once

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace gc::lp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Sense { LessEqual, Equal, GreaterEqual };

class Model {
 public:
  // Returns the new variable's index.
  int add_variable(double lower, double upper, double objective_coeff,
                   std::string name = "");

  // Returns the new row's index. Coefficients are added with set_coeff.
  int add_row(Sense sense, double rhs, std::string name = "");

  // Sets (overwrites) the coefficient of `var` in `row`. Duplicate calls for
  // the same (row, var) keep only the last value.
  void set_coeff(int row, int var, double value);

  void set_objective_coeff(int var, double value);

  int num_variables() const { return static_cast<int>(vars_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }

  double lower(int var) const { return vars_[check_var(var)].lower; }
  double upper(int var) const { return vars_[check_var(var)].upper; }
  double objective_coeff(int var) const {
    return vars_[check_var(var)].obj;
  }
  const std::string& variable_name(int var) const {
    return vars_[check_var(var)].name;
  }
  Sense row_sense(int row) const { return rows_[check_row(row)].sense; }
  double row_rhs(int row) const { return rows_[check_row(row)].rhs; }
  const std::string& row_name(int row) const {
    return rows_[check_row(row)].name;
  }
  // (var, coeff) pairs of a row, duplicates already merged.
  const std::vector<std::pair<int, double>>& row_entries(int row) const {
    return rows_[check_row(row)].entries;
  }

  // Value of the objective at a point (no feasibility check).
  double objective_value(const std::vector<double>& x) const;

  // Max violation of rows and bounds at a point; 0 means feasible.
  double max_violation(const std::vector<double>& x) const;

 private:
  struct Var {
    double lower, upper, obj;
    std::string name;
  };
  struct Row {
    Sense sense;
    double rhs;
    std::string name;
    std::vector<std::pair<int, double>> entries;
  };

  int check_var(int v) const {
    GC_CHECK_MSG(v >= 0 && v < num_variables(), "bad var index " << v);
    return v;
  }
  int check_row(int r) const {
    GC_CHECK_MSG(r >= 0 && r < num_rows(), "bad row index " << r);
    return r;
  }

  std::vector<Var> vars_;
  std::vector<Row> rows_;
};

}  // namespace gc::lp
