#include "fault/fault_schedule.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "obs/registry.hpp"

namespace gc::fault {

namespace {

// Fault-injection observability: node-slots spent in each fault state plus
// aggregate event activity. Bumped by apply_slot_faults as faults land.
struct FaultMetrics {
  obs::Counter& events = obs::registry().counter("fault.active_events");
  obs::Counter& node_down = obs::registry().counter("fault.node_down_slots");
  obs::Counter& blackout =
      obs::registry().counter("fault.renewable_blackout_slots");
  obs::Counter& grid = obs::registry().counter("fault.grid_outage_slots");
  obs::Counter& link = obs::registry().counter("fault.link_fade_slots");
  obs::Counter& spike = obs::registry().counter("fault.price_spike_slots");
  obs::Counter& fade_j = obs::registry().counter("fault.battery_fade_j");
};

FaultMetrics& metrics() {
  static thread_local FaultMetrics m;
  return m;
}

// Stable per-event sub-seed so draws for different events never collide
// even under the same base seed (SplitMix64's additive constant).
std::uint64_t event_seed(std::uint64_t seed, std::size_t event_idx) {
  return seed + 0x9E3779B97F4A7C15ull * (event_idx + 1);
}

}  // namespace

const char* to_string(FaultEvent::Kind k) {
  switch (k) {
    case FaultEvent::Kind::NodeOutage: return "node_outage";
    case FaultEvent::Kind::RenewableBlackout: return "renewable_blackout";
    case FaultEvent::Kind::GridOutage: return "grid_outage";
    case FaultEvent::Kind::PriceSpike: return "price_spike";
    case FaultEvent::Kind::BatteryFade: return "battery_fade";
    case FaultEvent::Kind::LinkFade: return "link_fade";
    case FaultEvent::Kind::ProcessKill: return "process_kill";
  }
  return "?";
}

FaultSchedule::FaultSchedule(int num_nodes, std::uint64_t seed)
    : num_nodes_(num_nodes), seed_(seed) {
  GC_CHECK(num_nodes >= 1);
}

void FaultSchedule::add(const FaultEvent& event) {
  const auto in_range = [&](int node) {
    return node >= 0 && node < num_nodes_;
  };
  GC_CHECK_MSG(event.duration >= 1, "fault window needs duration >= 1");
  GC_CHECK_MSG(event.start >= 0 ||
                   (event.probability > 0.0 && event.probability <= 1.0),
               "fault event needs start >= 0 or probability in (0, 1]");
  switch (event.kind) {
    case FaultEvent::Kind::NodeOutage:
      GC_CHECK_MSG(in_range(event.node), "node_outage needs a valid node");
      break;
    case FaultEvent::Kind::RenewableBlackout:
    case FaultEvent::Kind::GridOutage:
      GC_CHECK_MSG(event.node == -1 || in_range(event.node),
                   to_string(event.kind) << " node out of range");
      break;
    case FaultEvent::Kind::PriceSpike:
      GC_CHECK_MSG(event.magnitude >= 0.0,
                   "price_spike magnitude must be >= 0");
      break;
    case FaultEvent::Kind::BatteryFade:
      GC_CHECK_MSG(in_range(event.node), "battery_fade needs a valid node");
      GC_CHECK_MSG(event.start >= 0,
                   "battery_fade is deterministic: needs start >= 0");
      GC_CHECK_MSG(event.magnitude >= 0.0 && event.magnitude <= 1.0,
                   "battery_fade magnitude is a capacity fraction in [0, 1]");
      break;
    case FaultEvent::Kind::LinkFade:
      GC_CHECK_MSG(in_range(event.node) && in_range(event.peer) &&
                       event.node != event.peer,
                   "link_fade needs valid distinct node and peer");
      break;
    case FaultEvent::Kind::ProcessKill:
      GC_CHECK_MSG(event.start >= 0,
                   "process_kill is deterministic: needs start >= 0");
      break;
  }
  events_.push_back(event);
}

bool FaultSchedule::window_active(std::size_t event_idx, const FaultEvent& e,
                                  int t) const {
  if (e.start >= 0) return t >= e.start && t < e.start + e.duration;
  // Stochastic: a window started at any u in (t - duration, t] covers t.
  // Each u's start draw is a pure function of (seed, event, u), so this
  // scan gives identical answers no matter where the run was resumed.
  const Rng parent(event_seed(seed_, event_idx));
  const int first = std::max(0, t - e.duration + 1);
  for (int u = first; u <= t; ++u) {
    Rng draw = parent.fork(static_cast<std::uint64_t>(u));
    if (draw.bernoulli(e.probability)) return true;
  }
  return false;
}

double FaultSchedule::fade_fraction(const FaultEvent& e, int t) const {
  if (t < e.start) return 1.0;
  const double progress =
      std::min(1.0, static_cast<double>(t - e.start + 1) / e.duration);
  return 1.0 - (1.0 - e.magnitude) * progress;
}

SlotFaults FaultSchedule::at(int t) const {
  GC_CHECK(t >= 0);
  SlotFaults f;
  const auto ensure = [&](std::vector<char>& v) {
    if (v.empty()) v.assign(static_cast<std::size_t>(num_nodes_), 0);
  };
  const auto mark = [&](std::vector<char>& v, int node) {
    ensure(v);
    if (node >= 0) {
      v[node] = 1;
    } else {
      std::fill(v.begin(), v.end(), 1);
    }
  };
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    if (e.kind == FaultEvent::Kind::ProcessKill) {
      if (e.start != t) continue;
      // Rank this kill by (start, insertion order) among all kills so the
      // run loop can skip exactly the ones already survived. Keep the MAX
      // rank firing at t: two kills at the same slot must fire on two
      // consecutive attempts, not collapse into one.
      int rank = 0;
      for (std::size_t j = 0; j < events_.size(); ++j) {
        const FaultEvent& o = events_[j];
        if (o.kind != FaultEvent::Kind::ProcessKill || j == i) continue;
        if (o.start < e.start || (o.start == e.start && j < i)) ++rank;
      }
      f.kill_ordinal = std::max(f.kill_ordinal, rank);
      continue;  // never counts as an active physics event
    }
    if (e.kind == FaultEvent::Kind::BatteryFade) {
      const double frac = fade_fraction(e, t);
      if (frac >= 1.0) continue;
      if (f.battery_capacity_fraction.empty())
        f.battery_capacity_fraction.assign(
            static_cast<std::size_t>(num_nodes_), 1.0);
      f.battery_capacity_fraction[e.node] =
          std::min(f.battery_capacity_fraction[e.node], frac);
      ++f.active_events;
      continue;
    }
    if (!window_active(i, e, t)) continue;
    ++f.active_events;
    switch (e.kind) {
      case FaultEvent::Kind::NodeOutage:
        mark(f.node_down, e.node);
        break;
      case FaultEvent::Kind::RenewableBlackout:
        mark(f.renewable_blackout, e.node);
        break;
      case FaultEvent::Kind::GridOutage:
        mark(f.grid_outage, e.node);
        break;
      case FaultEvent::Kind::PriceSpike:
        f.cost_multiplier *= e.magnitude;
        break;
      case FaultEvent::Kind::LinkFade:
        if (f.link_faded.empty())
          f.link_faded.assign(
              static_cast<std::size_t>(num_nodes_) * num_nodes_, 0);
        f.link_faded[static_cast<std::size_t>(e.node) * num_nodes_ + e.peer] =
            1;
        break;
      case FaultEvent::Kind::BatteryFade:
      case FaultEvent::Kind::ProcessKill:
        break;  // handled above
    }
  }
  return f;
}

namespace {

FaultEvent::Kind kind_from_string(const std::string& s) {
  if (s == "node_outage") return FaultEvent::Kind::NodeOutage;
  if (s == "renewable_blackout") return FaultEvent::Kind::RenewableBlackout;
  if (s == "grid_outage") return FaultEvent::Kind::GridOutage;
  if (s == "price_spike") return FaultEvent::Kind::PriceSpike;
  if (s == "battery_fade") return FaultEvent::Kind::BatteryFade;
  if (s == "link_fade") return FaultEvent::Kind::LinkFade;
  if (s == "process_kill") return FaultEvent::Kind::ProcessKill;
  GC_CHECK_MSG(false, "unknown fault kind \"" << s << "\"");
  return FaultEvent::Kind::NodeOutage;  // unreachable
}

}  // namespace

FaultSchedule FaultSchedule::from_json(const std::string& json_text,
                                       int num_nodes) {
  const obs::JsonValue root = obs::json_parse(json_text);
  GC_CHECK_MSG(root.is_object(), "fault spec must be a JSON object");
  const auto seed =
      static_cast<std::uint64_t>(root.number_or("seed", 0.0));
  FaultSchedule schedule(num_nodes, seed);
  if (!root.has("events")) return schedule;
  for (const obs::JsonValue& ev : root.at("events").as_array()) {
    GC_CHECK_MSG(ev.is_object(), "fault event must be a JSON object");
    // Reject unknown keys so typos fail loudly instead of silently
    // disarming a fault.
    for (const auto& [key, value] : ev.as_object()) {
      (void)value;
      GC_CHECK_MSG(key == "kind" || key == "node" || key == "peer" ||
                       key == "start" || key == "duration" ||
                       key == "probability" || key == "magnitude",
                   "unknown fault event field \"" << key << "\"");
    }
    FaultEvent e;
    e.kind = kind_from_string(ev.at("kind").as_string());
    e.node = static_cast<int>(ev.number_or("node", -1.0));
    e.peer = static_cast<int>(ev.number_or("peer", -1.0));
    e.start = static_cast<int>(ev.number_or("start", -1.0));
    e.duration = static_cast<int>(ev.number_or("duration", 1.0));
    e.probability = ev.number_or("probability", 0.0);
    e.magnitude = ev.number_or("magnitude", 1.0);
    schedule.add(e);
  }
  return schedule;
}

FaultSchedule FaultSchedule::from_json_file(const std::string& path,
                                            int num_nodes) {
  std::ifstream in(path);
  GC_CHECK_MSG(in.good(), "cannot open fault spec " << path);
  std::ostringstream text;
  text << in.rdbuf();
  return from_json(text.str(), num_nodes);
}

void apply_slot_faults(const SlotFaults& faults, core::SlotInputs& inputs,
                       core::NetworkState& state) {
  if (!faults.any()) return;
  FaultMetrics& m = metrics();
  m.events.add(faults.active_events);
  if (!faults.node_down.empty()) {
    inputs.node_down = faults.node_down;
    for (char d : faults.node_down)
      if (d) m.node_down.add();
  }
  if (!faults.renewable_blackout.empty()) {
    for (std::size_t i = 0; i < faults.renewable_blackout.size(); ++i)
      if (faults.renewable_blackout[i]) {
        inputs.renewable_j[i] = 0.0;
        m.blackout.add();
      }
  }
  if (!faults.grid_outage.empty()) {
    for (std::size_t i = 0; i < faults.grid_outage.size(); ++i)
      if (faults.grid_outage[i]) {
        inputs.grid_connected[i] = 0;
        m.grid.add();
      }
  }
  if (!faults.link_faded.empty()) {
    inputs.link_faded = faults.link_faded;
    for (char l : faults.link_faded)
      if (l) m.link.add();
  }
  if (faults.cost_multiplier != 1.0) {
    inputs.cost_multiplier *= faults.cost_multiplier;
    m.spike.add();
  }
  if (!faults.battery_capacity_fraction.empty()) {
    const auto& model = state.model();
    for (int i = 0; i < model.num_nodes(); ++i) {
      const double target =
          model.node(i).battery.capacity_j * faults.battery_capacity_fraction[i];
      if (state.battery_capacity_j(i) == target) continue;
      m.fade_j.add(state.set_battery_capacity_j(i, target));
    }
  }
}

}  // namespace gc::fault
