// Fault injection for crash-proof long runs (docs/ROBUSTNESS.md).
//
// A FaultSchedule is a *pure function of the slot index*: at(t) returns the
// slot's fault overlay without mutating any internal state, so a resumed
// (checkpointed) run reproduces the exact fault series by simply
// re-evaluating at(t) — no fault state needs serializing. Stochastic fault
// windows are driven by seeded Bernoulli draws keyed on (event, slot)
// through Rng::fork, which depends only on the seed, never on draw order.
//
// Fault kinds (Section II vocabulary):
//  * NodeOutage        — the node is fully down for the window: it admits,
//                        forwards, transmits, receives, charges and
//                        discharges nothing; its queues and battery freeze.
//  * RenewableBlackout — renewable arrivals forced to 0 (cloud cover);
//                        node = -1 blacks out every node at once.
//  * GridOutage        — omega_i(t) forced to 0; node = -1 is grid-wide.
//  * PriceSpike        — the slot tariff f is scaled by `magnitude` (> 1
//                        for a spike); global, `node` is ignored.
//  * BatteryFade       — node's capacity fades linearly from 100% at
//                        `start` to fraction `magnitude` at start+duration
//                        and stays there (per-slot limits shrink along to
//                        keep eq. (13)); deterministic only.
//  * LinkFade          — directed link (node -> peer) is in a deep fade and
//                        carries nothing for the window.
//  * ProcessKill       — the simulator process itself dies (SIGKILL) at the
//                        start of slot `start`: a first-class injectable
//                        crash for the kill-chaos harness. Deterministic
//                        only, never perturbs the slot's physics — it is
//                        excluded from active_events and apply_slot_faults
//                        so a killed+resumed run's metrics and traces match
//                        an uninterrupted one's bit for bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/state.hpp"
#include "core/types.hpp"
#include "util/rng.hpp"

namespace gc::fault {

// One fault process. Deterministic windows pin `start` >= 0; stochastic
// ones leave start = -1 and give a per-slot window-start `probability`
// (each slot u independently starts a window covering [u, u + duration)).
struct FaultEvent {
  enum class Kind {
    NodeOutage,
    RenewableBlackout,
    GridOutage,
    PriceSpike,
    BatteryFade,
    LinkFade,
    ProcessKill,
  };
  Kind kind = Kind::NodeOutage;
  int node = -1;  // target node; -1 = all nodes (blackout / grid outage)
  int peer = -1;  // LinkFade receiver
  int start = -1;          // first covered slot; -1 = stochastic
  int duration = 1;        // window length in slots
  double probability = 0.0;  // per-slot window-start probability (start<0)
  double magnitude = 1.0;  // PriceSpike: tariff multiplier (>= 0);
                           // BatteryFade: final capacity fraction [0, 1]
};

const char* to_string(FaultEvent::Kind k);

// The fully expanded fault overlay of one slot.
struct SlotFaults {
  std::vector<char> node_down;           // empty when no outage can occur
  std::vector<char> renewable_blackout;  // empty when none can occur
  std::vector<char> grid_outage;         // empty when none can occur
  std::vector<char> link_faded;          // n*n row-major; empty when unused
  double cost_multiplier = 1.0;
  // Per-node battery capacity as a fraction of the model's pristine value;
  // empty when no fade event exists.
  std::vector<double> battery_capacity_fraction;
  // How many events were active this slot (one event may cover many nodes).
  // ProcessKill events never count here.
  int active_events = 0;
  // Highest rank (by (start, insertion order), 0-based) among ProcessKill
  // events firing at this slot, or -1 when none do. The run loop raises
  // SIGKILL iff kill_ordinal >= the number of kills already survived, so
  // each restart skips exactly the kills that already fired — including a
  // second kill scheduled at the very same slot.
  int kill_ordinal = -1;

  bool any() const { return active_events > 0; }
};

class FaultSchedule {
 public:
  explicit FaultSchedule(int num_nodes, std::uint64_t seed = 0);

  // Validates the event against this schedule's node count; throws
  // gc::CheckError on out-of-range targets or inconsistent parameters.
  void add(const FaultEvent& event);

  // Builds a schedule from a JSON spec (schema in docs/ROBUSTNESS.md):
  //   {"seed": 42,
  //    "events": [{"kind": "node_outage", "node": 3,
  //                "start": 100, "duration": 50},
  //               {"kind": "price_spike", "magnitude": 4.0,
  //                "probability": 0.005, "duration": 10}, ...]}
  // Throws gc::CheckError on malformed JSON or unknown fields/kinds.
  static FaultSchedule from_json(const std::string& json_text, int num_nodes);
  static FaultSchedule from_json_file(const std::string& path, int num_nodes);

  int num_nodes() const { return num_nodes_; }
  std::uint64_t seed() const { return seed_; }
  bool empty() const { return events_.empty(); }
  int num_events() const { return static_cast<int>(events_.size()); }
  const std::vector<FaultEvent>& events() const { return events_; }

  // Pure per-slot evaluation; t >= 0.
  SlotFaults at(int t) const;

 private:
  bool window_active(std::size_t event_idx, const FaultEvent& e, int t) const;
  // BatteryFade capacity fraction at slot t (1.0 before `start`).
  double fade_fraction(const FaultEvent& e, int t) const;

  int num_nodes_;
  std::uint64_t seed_;
  std::vector<FaultEvent> events_;
};

// Imposes the slot's faults on what the controller is about to observe:
// rewrites `inputs` (node_down / link_faded overlay, renewable blackout,
// grid outage, price multiplier) and applies battery fade to `state`.
// Every injected fault is counted in the obs registry (fault.*).
void apply_slot_faults(const SlotFaults& faults, core::SlotInputs& inputs,
                       core::NetworkState& state);

}  // namespace gc::fault
